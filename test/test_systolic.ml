(* Tests for the cycle-accurate array simulator against the paper's
   Figures 2 and 3 and the structural claims of Examples 5.1/5.2. *)

let iv = Intvec.of_ints

let matmul_report mu pi =
  let rng = Random.State.make [| 2025 |] in
  let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi in
  Exec.run alg (Matmul.semantics ~a ~b) tm

let test_figure_3_execution () =
  let mu = 4 in
  let r = matmul_report mu (Matmul.optimal_pi ~mu) in
  Alcotest.(check int) "makespan = mu(mu+2)+1" (Matmul.optimal_total_time ~mu) r.Exec.makespan;
  Alcotest.(check int) "13 PEs" 13 r.Exec.num_processors;
  Alcotest.(check int) "125 computations" 125 r.Exec.computations;
  Alcotest.(check bool) "clean" true (Exec.is_clean r);
  Alcotest.(check (array int)) "3 buffers on the A stream" [| 0; 3; 0 |] r.Exec.max_buffer_occupancy

let test_lee_kedem_execution () =
  let mu = 4 in
  let r = matmul_report mu (Matmul.lee_kedem_pi ~mu) in
  Alcotest.(check int) "makespan = mu(mu+3)+1" (Matmul.lee_kedem_total_time ~mu) r.Exec.makespan;
  Alcotest.(check bool) "clean" true (Exec.is_clean r)

let test_conflicting_mapping_detected () =
  let r = matmul_report 4 (iv [ 1; 1; 1 ]) in
  Alcotest.(check bool) "conflicts found" true (r.Exec.conflicts <> []);
  Alcotest.(check bool) "not clean" false (Exec.is_clean r)

let test_non_causal_mapping_rejected () =
  let alg = Matmul.algorithm ~mu:2 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(iv [ 1; -1; 1 ]) in
  Alcotest.(check bool) "raises" true
    (try ignore (Exec.run alg Dataflow.semantics tm); false with Failure _ -> true)

let test_tc_execution () =
  let mu = 4 in
  let alg = Transitive_closure.algorithm ~mu in
  let tm = Tmap.make ~s:Transitive_closure.paper_s ~pi:(Transitive_closure.optimal_pi ~mu) in
  let r = Exec.run alg Dataflow.semantics tm in
  Alcotest.(check int) "makespan" (Transitive_closure.optimal_total_time ~mu) r.Exec.makespan;
  Alcotest.(check int) "mu+1 PEs" (mu + 1) r.Exec.num_processors;
  Alcotest.(check bool) "clean" true (Exec.is_clean r)

let test_tc_prior_schedule_slower_but_clean () =
  let mu = 4 in
  let alg = Transitive_closure.algorithm ~mu in
  let tm = Tmap.make ~s:Transitive_closure.paper_s ~pi:(Transitive_closure.prior_pi ~mu) in
  let r = Exec.run alg Dataflow.semantics tm in
  Alcotest.(check int) "makespan mu(2mu+3)+1" (Transitive_closure.prior_total_time ~mu) r.Exec.makespan;
  Alcotest.(check bool) "clean" true (Exec.is_clean r)

let test_convolution_2d_array () =
  (* A 4-D algorithm on a 2-D array with real arithmetic. *)
  let mu_ij = 2 and mu_pq = 1 in
  let alg = Convolution.algorithm ~mu_ij ~mu_pq in
  let ker = [| [| 1; -2 |]; [| 3; 4 |] |] in
  let img = Array.init (mu_ij + 1) (fun i -> Array.init (mu_ij + 1) (fun j -> (i * 3) + j + 1)) in
  let sem = Convolution.semantics ~ker ~img in
  (* Schedule found by Procedure 5.1 on the 2-D space map. *)
  match Procedure51.optimize alg ~s:Convolution.example_s with
  | None -> Alcotest.fail "expected a schedule"
  | Some { pi; _ } ->
    let tm = Tmap.make ~s:Convolution.example_s ~pi in
    let r = Exec.run alg sem tm in
    Alcotest.(check bool) "no conflicts" true (r.Exec.conflicts = []);
    Alcotest.(check bool) "values ok" true (Exec.values_agree r)

let test_utilization_bounds () =
  let r = matmul_report 3 (Matmul.optimal_pi ~mu:3) in
  Alcotest.(check bool) "0 < util <= 1" true (r.Exec.utilization > 0. && r.Exec.utilization <= 1.)

let test_trace_linear_table () =
  let mu = 2 in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let table = Trace.linear_array_table alg tm in
  (* Every index point appears exactly once. *)
  Index_set.iter
    (fun j ->
      let s = Printf.sprintf "(%d,%d,%d)" j.(0) j.(1) j.(2) in
      let count = ref 0 in
      let slen = String.length s in
      for i = 0 to String.length table - slen do
        if String.sub table i slen = s then incr count
      done;
      Alcotest.(check int) ("occurrences of " ^ s) 1 !count)
    alg.Algorithm.index_set

let test_trace_rejects_2d () =
  let alg = Convolution.algorithm ~mu_ij:1 ~mu_pq:1 in
  let tm = Tmap.make ~s:Convolution.example_s ~pi:(iv [ 1; 2; 3; 4 ]) in
  Alcotest.(check bool) "2-D rejected" true
    (try ignore (Trace.linear_array_table alg tm); false with Invalid_argument _ -> true)

let test_schedule_table_is_total () =
  let mu = 2 in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let total =
    List.fold_left (fun acc (_, evs) -> acc + List.length evs) 0 (Exec.schedule_table alg tm)
  in
  Alcotest.(check int) "all points scheduled" (Index_set.cardinal alg.Algorithm.index_set) total

let test_stats_matmul () =
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let s = Stats.compute alg tm in
  Alcotest.(check int) "processors" 13 s.Stats.processors;
  Alcotest.(check int) "makespan" 25 s.Stats.makespan;
  Alcotest.(check int) "computations" 125 s.Stats.computations;
  Alcotest.(check int) "wire = |S D|" 3 s.Stats.wire_length;
  Alcotest.(check bool) "loads sum to |J|" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Stats.pe_loads alg tm) = 125);
  Alcotest.(check bool) "peak parallelism <= processors" true
    (s.Stats.peak_parallelism <= s.Stats.processors);
  Alcotest.(check bool) "min <= max load" true (s.Stats.min_pe_load <= s.Stats.max_pe_load)

let test_grid_snapshot_2d () =
  let alg = Convolution.algorithm ~mu_ij:2 ~mu_pq:1 in
  match Procedure51.optimize alg ~s:Convolution.example_s with
  | None -> Alcotest.fail "expected a schedule"
  | Some r ->
    let tm = Tmap.make ~s:Convolution.example_s ~pi:r.Procedure51.pi in
    (* Find the first cycle and check its snapshot mentions the origin. *)
    (match Exec.schedule_table alg tm with
    | (t0, _) :: _ ->
      let snap = Trace.grid_snapshot alg tm ~time:t0 in
      Alcotest.(check bool) "snapshot nonempty" true (String.length snap > 0);
      let activity = Trace.grid_activity alg tm in
      Alcotest.(check bool) "activity nonempty" true (String.length activity > 0)
    | [] -> Alcotest.fail "empty schedule")

let test_grid_snapshot_rejects_1d () =
  let alg = Matmul.algorithm ~mu:2 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:2) in
  Alcotest.(check bool) "1-D rejected" true
    (try ignore (Trace.grid_snapshot alg tm ~time:0); false
     with Invalid_argument _ -> true)

let test_linkcheck_paper_mappings_clean () =
  (* K = I on both paper mappings: single use per link, no collisions
     (the appendix's argument, now checked analytically). *)
  let check alg tm =
    match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
    | Some r ->
      Alcotest.(check bool) "single use" true (Linkcheck.single_use_per_link r);
      Alcotest.(check (list pass)) "no collisions" [] (Linkcheck.predict alg tm r)
    | None -> Alcotest.fail "expected a routing"
  in
  check (Matmul.algorithm ~mu:4) (Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:4));
  check
    (Transitive_closure.algorithm ~mu:4)
    (Tmap.make ~s:Transitive_closure.paper_s ~pi:(Transitive_closure.optimal_pi ~mu:4))

let prop_linkcheck_matches_simulator =
  QCheck.Test.make ~name:"analytical link collisions = simulated collisions" ~count:120
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mu = 2 + Random.State.int rng 2 in
      let alg = Matmul.algorithm ~mu in
      let s = Intmat.make 1 3 (fun _ _ -> Zint.of_int (Random.State.int rng 5 - 2)) in
      let pi = Array.init 3 (fun _ -> Zint.of_int (1 + Random.State.int rng 4)) in
      if not (Schedule.respects pi alg.Algorithm.dependences) then true
      else begin
        let tm = Tmap.make ~s ~pi in
        match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
        | None -> true
        | Some routing ->
          let predicted = Linkcheck.predict alg tm routing <> [] in
          let observed = (Exec.run alg Dataflow.semantics tm).Exec.collisions <> [] in
          predicted = observed
      end)

let prop_clean_iff_conflict_free =
  QCheck.Test.make ~name:"simulator conflicts iff oracle says so (matmul family)" ~count:60
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mu = 2 + Random.State.int rng 2 in
      let alg = Matmul.algorithm ~mu in
      let pi =
        Array.init 3 (fun _ -> Zint.of_int (1 + Random.State.int rng (mu + 1)))
      in
      if not (Schedule.respects pi alg.Algorithm.dependences) then true
      else begin
        let tm = Tmap.make ~s:Matmul.paper_s ~pi in
        let t = Tmap.matrix tm in
        let r = Exec.run alg Dataflow.semantics tm in
        let free = Conflict.is_conflict_free ~mu:(Index_set.bounds alg.Algorithm.index_set) t in
        (r.Exec.conflicts = []) = free
      end)

let prop_makespan_equals_formula =
  QCheck.Test.make ~name:"simulated makespan = Equation 2.7" ~count:60 QCheck.int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mu = 2 + Random.State.int rng 2 in
      let alg = Matmul.algorithm ~mu in
      let pi = Array.init 3 (fun _ -> Zint.of_int (1 + Random.State.int rng 3)) in
      let tm = Tmap.make ~s:Matmul.paper_s ~pi in
      let r = Exec.run alg Dataflow.semantics tm in
      r.Exec.makespan = Schedule.total_time ~mu:(Index_set.bounds alg.Algorithm.index_set) pi)

(* --------------- compiled kernel + scenario matrix ---------------- *)

let test_kernel_matches_reference () =
  let spec = Scenario.scenario "matmul" ~mu:4 in
  let alg, tm = Scenario.instantiate spec in
  let plan = Kernel.compile alg tm in
  let sem = Scenario.matmul_semantics (module Scenario.Int_type) ~mu:4 ~seed:7 in
  let kr = Kernel.run plan sem in
  let reference = Algorithm.evaluate_all alg sem in
  Index_set.iter
    (fun j ->
      Alcotest.(check bool) "cell = reference" true
        (sem.Algorithm.equal_value (kr.Kernel.lookup j) (reference j)))
    alg.Algorithm.index_set;
  Alcotest.(check int) "makespan = Equation 2.7"
    (Schedule.total_time ~mu:(Index_set.bounds alg.Algorithm.index_set) tm.Tmap.pi)
    (Kernel.makespan plan);
  Alcotest.(check int) "13 PEs as in Figure 3" 13 (Kernel.processors plan);
  Alcotest.(check int) "125 cells" 125 (Kernel.cells plan)

let test_kernel_block_invariance () =
  (* Same values at block = 1 (maximal fan-out) and the default, under
     a multi-domain pool — float, so any ordering bug shows up. *)
  let alg, tm = Scenario.instantiate (Scenario.scenario "tc" ~mu:4) in
  let sem = Scenario.tc_semantics (module Scenario.Float_type) in
  let pool = Engine.Pool.create ~jobs:4 () in
  let r1 = Kernel.run ~pool (Kernel.compile ~block:1 alg tm) sem in
  let r2 = Kernel.run ~pool (Kernel.compile alg tm) sem in
  Index_set.iter
    (fun j ->
      Alcotest.(check (float 0.)) "block-size independent"
        (r1.Kernel.lookup j) (r2.Kernel.lookup j))
    alg.Algorithm.index_set;
  Alcotest.(check bool) "block=1 actually fanned out" true
    (r1.Kernel.parallel_levels > 0)

let test_kernel_rejects_non_causal () =
  let alg = Matmul.algorithm ~mu:2 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(iv [ 1; -1; 1 ]) in
  Alcotest.(check bool) "raises" true
    (try ignore (Kernel.compile alg tm); false with Failure _ -> true)

let test_scenario_matrix_verifies () =
  let pool = Engine.Pool.create ~jobs:2 () in
  let specs = [ Scenario.scenario "matmul" ~mu:4; Scenario.scenario "tc" ~mu:4 ] in
  let cells = Scenario.run_matrix ~pool specs Scenario.types in
  Alcotest.(check int) "2 scenarios x 3 dtypes" 6 (List.length cells);
  List.iter
    (fun (c : Scenario.cell) ->
      let name = c.Scenario.spec.Scenario.name ^ "/" ^ c.Scenario.dtype in
      Alcotest.(check bool) (name ^ " verified") true (Scenario.cell_ok c);
      match c.Scenario.sim with
      | None -> Alcotest.fail (name ^ ": simulator cross-check expected at mu=4")
      | Some s ->
        Alcotest.(check int) (name ^ " sim makespan")
          c.Scenario.makespan s.Scenario.sim_makespan)
    cells

let test_ulp_distance () =
  Alcotest.(check int) "equal" 0 (Scenario.ulp_distance 1.5 1.5);
  Alcotest.(check int) "adjacent" 1
    (Scenario.ulp_distance 1.0 (Float.succ 1.0));
  Alcotest.(check bool) "sign change is far" true
    (Scenario.ulp_distance (-1e-300) 1e-300 = max_int);
  Alcotest.(check bool) "nan is far" true
    (Scenario.ulp_distance Float.nan 0.0 = max_int)

(* ----------------- verification verdicts (Exec) ------------------- *)

let test_exec_fully_verified () =
  let r = matmul_report 4 (Matmul.optimal_pi ~mu:4) in
  Alcotest.(check string) "values-ok" "values-ok"
    (Exec.verification_name r.Exec.verified);
  Alcotest.(check bool) "fully verified" true (Exec.fully_verified r)

let test_exec_skipped_no_routing () =
  (* S = [5,0,0] forces dependence (1,0,0) to travel 5 PEs in 1 cycle:
     no routing exists within the slack, so movement checks are
     skipped — and the report must say so rather than claim values_ok
     silently (is_clean still holds, fully_verified must not). *)
  let alg = Matmul.algorithm ~mu:2 in
  let tm = Tmap.make ~s:(Intmat.of_ints [ [ 5; 0; 0 ] ]) ~pi:(iv [ 1; 1; 1 ]) in
  let r = Exec.run alg Dataflow.semantics tm in
  Alcotest.(check bool) "routing absent" true (r.Exec.routing = None);
  Alcotest.(check string) "skipped-no-routing" "skipped-no-routing"
    (Exec.verification_name r.Exec.verified);
  Alcotest.(check bool) "values still agree" true (Exec.values_agree r);
  Alcotest.(check bool) "not fully verified" false (Exec.fully_verified r)

let test_exec_mismatch_detected () =
  (* An always-false equality makes every cell disagree: the verdict
     must be Mismatch with witnesses, never a bare boolean. *)
  let alg = Matmul.algorithm ~mu:2 in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:2) in
  let sem = { Dataflow.semantics with Algorithm.equal_value = (fun _ _ -> false) } in
  let r = Exec.run alg sem tm in
  (match r.Exec.verified with
  | Exec.Mismatch (w :: _) ->
    Alcotest.(check int) "witness arity" 3 (Array.length w)
  | _ -> Alcotest.fail "expected Mismatch with witnesses");
  Alcotest.(check bool) "values disagree" false (Exec.values_agree r);
  Alcotest.(check bool) "not clean" false (Exec.is_clean r)

(* ------------- link collisions + register bound (5.1) ------------- *)

let test_linkcheck_forced_collision () =
  (* A crafted K that routes the A stream (+1,+1,-1) instead of the
     minimal (+1): displacement still 1, hops 3 <= slack 4 under
     Pi = (1,4,1), but the +1 link is used twice — exactly the [23]
     condition, so the analytical checker must predict a collision. *)
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(iv [ 1; 4; 1 ]) in
  let p = Tmap.nearest_neighbor_primitives 1 in
  let col_of v =
    let rec go i =
      if i >= Intmat.cols p then Alcotest.fail "primitive not found"
      else if Zint.to_int (Intmat.get p 0 i) = v then i
      else go (i + 1)
    in
    go 0
  in
  let plus = col_of 1 and minus = col_of (-1) in
  (* S D = [1, 1, -1]: stream 0 hops +1, stream 2 hops -1, and the
     detoured stream 1 hops +1,+1,-1. *)
  let k_matrix =
    Intmat.make 2 3 (fun r c ->
        Zint.of_int
          (if c = 0 then (if r = plus then 1 else 0)
           else if c = 1 then (if r = plus then 2 else 1)
           else if r = minus then 1
           else 0))
  in
  let sd = Intmat.mul tm.Tmap.s alg.Algorithm.dependences in
  Alcotest.(check bool) "P K = S D" true
    (Intmat.equal (Intmat.mul p k_matrix) sd);
  let routing = { Tmap.k_matrix; hops = [| 1; 3; 1 |]; buffers = [| 0; 1; 0 |] } in
  Alcotest.(check bool) "multi-use detected" false
    (Linkcheck.single_use_per_link routing);
  let predictions = Linkcheck.predict alg tm routing in
  Alcotest.(check bool) "collision predicted" true (predictions <> []);
  List.iter
    (fun (pr : Linkcheck.prediction) ->
      Alcotest.(check int) "on the detoured stream" 1 pr.Linkcheck.stream;
      let l1, l2 = pr.Linkcheck.hop_positions in
      Alcotest.(check bool) "ordered hop pair" true (l1 < l2))
    predictions

let test_register_bound_ex51 () =
  (* Example 5.1: the A stream needs Pi d_i - sum_j k_ji = 4 - 1 = 3
     delay registers, the other streams none.  The simulator's observed
     buffer occupancy must meet the analytical bound exactly on A and
     never exceed it anywhere. *)
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  let pi = Matmul.optimal_pi ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi in
  (match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
  | None -> Alcotest.fail "expected a routing"
  | Some routing ->
    Alcotest.(check (array int)) "buffers = Pi d_i - hops_i" [| 0; 3; 0 |]
      routing.Tmap.buffers;
    Array.iteri
      (fun i h ->
        let pid =
          Zint.to_int (Intvec.dot pi (Intmat.col alg.Algorithm.dependences i))
        in
        Alcotest.(check int)
          (Printf.sprintf "stream %d: buffers = Pi d - hops" i)
          (pid - h) routing.Tmap.buffers.(i))
      routing.Tmap.hops;
    let r = matmul_report mu pi in
    Array.iteri
      (fun i occ ->
        Alcotest.(check bool)
          (Printf.sprintf "stream %d: occupancy <= bound" i) true
          (occ <= routing.Tmap.buffers.(i)))
      r.Exec.max_buffer_occupancy;
    Alcotest.(check int) "A stream meets the bound" routing.Tmap.buffers.(1)
      r.Exec.max_buffer_occupancy.(1))

let suite =
  [
    Alcotest.test_case "Figure 3 execution" `Quick test_figure_3_execution;
    Alcotest.test_case "Lee-Kedem execution" `Quick test_lee_kedem_execution;
    Alcotest.test_case "conflict detection" `Quick test_conflicting_mapping_detected;
    Alcotest.test_case "non-causal rejected" `Quick test_non_causal_mapping_rejected;
    Alcotest.test_case "transitive closure execution" `Quick test_tc_execution;
    Alcotest.test_case "tc prior schedule" `Quick test_tc_prior_schedule_slower_but_clean;
    Alcotest.test_case "4-D convolution on 2-D array" `Slow test_convolution_2d_array;
    Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
    Alcotest.test_case "trace table" `Quick test_trace_linear_table;
    Alcotest.test_case "trace rejects 2-D" `Quick test_trace_rejects_2d;
    Alcotest.test_case "schedule table total" `Quick test_schedule_table_is_total;
    Alcotest.test_case "stats matmul" `Quick test_stats_matmul;
    Alcotest.test_case "2-D grid snapshot" `Slow test_grid_snapshot_2d;
    Alcotest.test_case "grid rejects 1-D" `Quick test_grid_snapshot_rejects_1d;
    Alcotest.test_case "linkcheck paper mappings" `Quick test_linkcheck_paper_mappings_clean;
    Alcotest.test_case "kernel matches reference" `Quick test_kernel_matches_reference;
    Alcotest.test_case "kernel block invariance" `Quick test_kernel_block_invariance;
    Alcotest.test_case "kernel rejects non-causal" `Quick test_kernel_rejects_non_causal;
    Alcotest.test_case "scenario matrix verifies" `Quick test_scenario_matrix_verifies;
    Alcotest.test_case "ulp distance" `Quick test_ulp_distance;
    Alcotest.test_case "exec fully verified" `Quick test_exec_fully_verified;
    Alcotest.test_case "exec skipped-no-routing" `Quick test_exec_skipped_no_routing;
    Alcotest.test_case "exec mismatch detected" `Quick test_exec_mismatch_detected;
    Alcotest.test_case "linkcheck forced collision" `Quick test_linkcheck_forced_collision;
    Alcotest.test_case "register bound Ex 5.1" `Quick test_register_bound_ex51;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_linkcheck_matches_simulator;
        prop_clean_iff_conflict_free;
        prop_makespan_equals_formula;
      ]
