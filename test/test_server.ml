(* Tests for the mapping-query service: store persistence and crash
   recovery, admission control, the wire protocol, and a live
   differential run replaying the regression corpus through a real
   daemon (cold store, warm store, and after a restart). *)

module Store = Server.Store
module Protocol = Server.Protocol
module Admission = Server.Admission
module Daemon = Server.Daemon
module Client = Server.Client

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-test-%d-%d%s" (Unix.getpid ()) !counter suffix)

let mu1 = [| 4; 4; 4 |]
let t1 = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
let mu2 = [| 6; 6; 6; 6 |]
let t2 = Intmat.of_ints [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]

(* ------------------------------- store ------------------------------ *)

let test_store_roundtrip () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  Alcotest.(check bool) "cold miss" true (Store.find s ~mu:mu1 t1 = None);
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Alcotest.(check bool) "hit after add" true (Store.find s ~mu:mu1 t1 = Some e1);
  Store.close s;
  (* A fresh process sees everything. *)
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "loaded" 2 st.Store.loaded;
  Alcotest.(check int) "nothing dropped" 0 st.Store.dropped_bytes;
  Alcotest.(check bool) "warm hit 1" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "warm hit 2" true (Store.find s ~mu:mu2 t2 = Some e2);
  (* Same mapping matrix, different bounds: a distinct key. *)
  Alcotest.(check bool) "distinct mu" true (Store.find s ~mu:[| 9; 9; 9 |] t1 = None);
  Store.close s;
  Sys.remove path

let test_store_crash_recovery () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  (* Tear the last record mid-line, as a crash between [write] and
     the terminating newline would. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Unix.truncate path (String.length full - 7);
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "one record survives" 1 st.Store.loaded;
  Alcotest.(check bool) "torn tail dropped" true (st.Store.dropped_bytes > 0);
  Alcotest.(check bool) "survivor readable" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "torn record gone" true (Store.find s ~mu:mu2 t2 = None);
  (* The journal is whole again: appends after recovery persist. *)
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  let s = Store.open_ path in
  Alcotest.(check int) "re-added persists" 2 (Store.stats s).Store.loaded;
  Alcotest.(check int) "clean reopen" 0 (Store.stats s).Store.dropped_bytes;
  Store.close s;
  Sys.remove path

let test_store_corrupt_record () =
  let path = fresh_path ".store" in
  let quarantine = path ^ ".quarantine" in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  let s = Store.open_ path in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  (* Flip a byte inside the first record: the checksum rejects it, the
     record is quarantined into the sidecar, and the independently
     checksummed record after it survives the compaction. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  let b = Bytes.of_string full in
  Bytes.set b (header_end + 3) 'Z';
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "later record survives" 1 st.Store.loaded;
  Alcotest.(check int) "corrupt record quarantined" 1 st.Store.quarantined;
  Alcotest.(check bool) "sidecar written" true (Sys.file_exists quarantine);
  Alcotest.(check bool) "survivor readable" true (Store.find s ~mu:mu2 t2 = Some e2);
  (* The quarantined key forces a miss until a fresh verdict
     re-verifies it... *)
  Alcotest.(check bool) "quarantined key misses" true (Store.find s ~mu:mu1 t1 = None);
  Store.add s ~mu:mu1 t1 e1;
  Alcotest.(check int) "re-add heals" 1 (Store.stats s).Store.healed;
  Alcotest.(check bool) "healed key hits" true (Store.find s ~mu:mu1 t1 = Some e1);
  Store.close s;
  (* ...and the healed journal replays clean: both records, no
     quarantine, no torn tail. *)
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "healed journal replays whole" 2 st.Store.loaded;
  Alcotest.(check int) "no quarantine after heal" 0 st.Store.quarantined;
  Alcotest.(check int) "no torn tail" 0 st.Store.dropped_bytes;
  Store.close s;
  Sys.remove path;
  Sys.remove quarantine

let test_store_foreign_file () =
  let path = fresh_path ".store" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a journal\n");
  Alcotest.(check bool) "refuses foreign file" true
    (try
       ignore (Store.open_ path);
       false
     with Failure _ -> true);
  Sys.remove path

(* ----------------------------- admission ---------------------------- *)

let test_admission_shedding () =
  let q = Admission.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Admission.try_push q 1);
  Alcotest.(check bool) "push 2" true (Admission.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Admission.try_push q 3);
  Alcotest.(check int) "depth" 2 (Admission.length q);
  Admission.close q;
  Alcotest.(check bool) "push after close shed" false (Admission.try_push q 4);
  (* Queued items still drain after close... *)
  Alcotest.(check (option (list int))) "drain" (Some [ 1; 2 ])
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true));
  (* ...then consumers get the end-of-queue signal. *)
  Alcotest.(check (option (list int))) "closed" None
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true))

let test_admission_batching () =
  let q = Admission.create ~capacity:16 in
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 2; 4; 6; 7; 8 ];
  let even a b = a mod 2 = b mod 2 in
  (* The batch is the compatible prefix, cut at the first mismatch. *)
  Alcotest.(check (option (list int))) "even prefix" (Some [ 2; 4; 6 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  Alcotest.(check (option (list int))) "odd singleton" (Some [ 7 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  (* [max] bounds the batch even when everything is compatible. *)
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 10; 12 ];
  Alcotest.(check (option (list int))) "max cut" (Some [ 8; 10 ])
    (Admission.pop_batch q ~max:2 ~compatible:even)

(* ----------------------------- protocol ----------------------------- *)

let test_protocol_roundtrip () =
  let check_roundtrip name json expect_op =
    match Protocol.request_of_line (Json.to_string json) with
    | Ok env -> Alcotest.(check string) name expect_op (Protocol.op_name env.Protocol.req)
    | Error e -> Alcotest.failf "%s rejected: %s" name e
  in
  check_roundtrip "analyze" (Protocol.analyze ~id:(Json.Int 1) ~mu:mu1 t1) "analyze";
  check_roundtrip "analyze w/ deadline"
    (Protocol.analyze ~deadline_ms:50 ~mu:mu1 t1)
    "analyze";
  check_roundtrip "search"
    (Protocol.search ~algorithm:"matmul" ~mu:3 ~pareto:true ~array_dim:1 ())
    "search";
  check_roundtrip "simulate"
    (Protocol.simulate ~algorithm:"matmul" ~mu:2 ~pi:(Intvec.of_ints [ 1; 1; 1 ]) ())
    "simulate";
  check_roundtrip "replay"
    (Protocol.replay (Check.Instance.make ~mu:mu1 t1))
    "replay";
  check_roundtrip "ping" (Protocol.ping ~id:(Json.Str "x") ()) "ping";
  check_roundtrip "stats" (Protocol.stats_request ()) "stats";
  check_roundtrip "drain" (Protocol.drain ()) "drain"

let test_protocol_rejects () =
  let rejected line =
    match Protocol.request_of_line line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (rejected "nope");
  Alcotest.(check bool) "not an object" true (rejected "[1,2]");
  Alcotest.(check bool) "missing op" true (rejected {|{"id":1}|});
  Alcotest.(check bool) "unknown op" true (rejected {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "mu arity mismatch" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,4]}|});
  Alcotest.(check bool) "mu below 1" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,0,4]}|});
  Alcotest.(check bool) "ragged matrix" true
    (rejected {|{"op":"analyze","t":[[1,1],[1]],"mu":[4,4]}|})

let test_protocol_id_echo () =
  match Protocol.request_of_line {|{"op":"ping","id":{"seq":7}}|} with
  | Ok env ->
    let reply = Protocol.ok_reply ~id:env.Protocol.id ~op:"ping" [] in
    Alcotest.(check string) "structured id echoed"
      {|{"id":{"seq":7},"ok":true,"op":"ping"}|}
      (Json.to_string reply);
    Alcotest.(check bool) "reply_ok" true (Protocol.reply_ok reply)
  | Error e -> Alcotest.failf "ping with structured id rejected: %s" e

(* ----------------------------- live server -------------------------- *)

let boot ?store_path () =
  let sock = fresh_path ".sock" in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock sock)) with
      jobs = Some 2;
      store_path;
    }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  (d, th, sock)

let shutdown (d, th, _sock) =
  Daemon.initiate_drain d;
  Thread.join th

let direct_verdict (inst : Check.Instance.t) =
  Json.to_string
    (Protocol.json_of_wire
       (Protocol.wire_of_verdict
          (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)))

let analyze_via conn (inst : Check.Instance.t) =
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 0) ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check bool) "reply ok" true (Protocol.reply_ok reply);
  let verdict =
    match Json.member "verdict" reply with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail "analyze reply without verdict"
  in
  let status =
    match Json.member "store" reply with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail "analyze reply without store status"
  in
  (verdict, status)

let test_live_corpus_differential () =
  let corpus = Check.Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus present" true (corpus <> []);
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  (* Cold pass: every verdict is computed, persisted, and must render
     byte-identically to a direct local Analysis.check. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("cold " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("cold status " ^ name) "miss" status)
    corpus;
  (* Warm pass on the same server: served from the store, same bytes. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("warm " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("warm status " ^ name) "hit" status)
    corpus;
  Client.close conn;
  shutdown server;
  (* Restart on the same journal: the store survives the round trip
     and the warm hits keep their bytes. *)
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("post-restart " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("post-restart status " ^ name) "hit" status)
    corpus;
  let stats = Client.request conn (Protocol.stats_request ~id:(Json.Int 1) ()) in
  (match Json.member "store" stats with
  | Some store -> (
    match (Json.member "loaded" store, Json.member "hits" store) with
    | Some (Json.Int loaded), Some (Json.Int hits) ->
      Alcotest.(check bool) "journal replayed at boot" true (loaded > 0);
      Alcotest.(check bool) "post-restart hit rate > 0" true (hits > 0)
    | _ -> Alcotest.fail "stats reply without store.loaded/store.hits")
  | None -> Alcotest.fail "stats reply without store");
  Client.close conn;
  shutdown server;
  Sys.remove store_path

let test_live_replay_op () =
  let corpus = Check.Corpus.load_dir "corpus" in
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let reply = Client.request conn (Protocol.replay ~id:(Json.Str name) inst) in
      Alcotest.(check bool) (name ^ " ok") true (Protocol.reply_ok reply);
      match Json.member "agree" reply with
      | Some (Json.Bool agree) ->
        Alcotest.(check bool) (name ^ " fast path agrees with oracle") true agree
      | Some Json.Null -> () (* index set too large for the oracle *)
      | _ -> Alcotest.fail "replay reply without agree")
    corpus;
  Client.close conn;
  shutdown server

let test_live_bad_requests () =
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Json.Str "not an object") in
  Alcotest.(check bool) "rejected" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  let reply =
    Client.request conn
      (Json.Obj [ ("op", Json.Str "search"); ("algorithm", Json.Str "nope"); ("mu", Json.Int 2) ])
  in
  Alcotest.(check (option string)) "unknown algorithm is bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  (* Unknown-algorithm failures must not poison the connection. *)
  let reply = Client.request conn (Protocol.ping ~id:(Json.Int 9) ()) in
  Alcotest.(check bool) "still serving" true (Protocol.reply_ok reply);
  Client.close conn;
  shutdown server

let test_live_drain_rejects () =
  let server = boot () in
  let d, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Protocol.drain ~id:(Json.Int 1) ()) in
  Alcotest.(check bool) "drain acknowledged" true (Protocol.reply_ok reply);
  (* After the ack the drain runs concurrently, so the follow-up is
     refused one of two ways: an explicit "draining" reply if the
     connection thread is still reading, or a closed socket if the
     shutdown won the race.  Only a successful verdict would be a
     bug. *)
  (match Client.request conn (Protocol.analyze ~id:(Json.Int 2) ~mu:mu1 t1) with
  | reply ->
    Alcotest.(check (option string)) "queued work refused while draining"
      (Some "draining") (Protocol.error_code reply)
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  | exception Failure _ -> ());
  ignore (Daemon.stats_fields d);
  Client.close conn;
  shutdown server

let test_live_load_verified () =
  (* A small version of the CI smoke run: concurrent verified load,
     zero disagreements, zero unexplained sheds. *)
  let server = boot ~store_path:(fresh_path ".store") () in
  let _, _, sock = server in
  let r =
    Client.load (`Unix sock)
      { Client.default_load with requests = 200; concurrency = 4; distinct = 16 }
  in
  Alcotest.(check int) "no disagreements" 0 r.Client.disagreements;
  Alcotest.(check int) "no transport errors" 0 r.Client.errors;
  Alcotest.(check int) "no sheds at default capacity" 0 r.Client.shed;
  Alcotest.(check int) "all replies ok" 200 r.Client.ok;
  shutdown server

(* --------------------------- fault injection ------------------------ *)

(* Every test that arms a plan must disarm it on all paths, or the
   fault would leak into unrelated tests. *)
let with_plan plan f = Fault.Plan.arm plan; Fun.protect ~finally:Fault.Plan.disarm f

let test_fault_plan_determinism () =
  let decisions plan =
    with_plan plan (fun () ->
        List.init 200 (fun _ -> Fault.should_fail "store.write"))
  in
  let p1 = Fault.Plan.make ~rate:0.5 ~seed:17 ~classes:[ "io" ] () in
  let p2 = Fault.Plan.make ~rate:0.5 ~seed:17 ~classes:[ "io" ] () in
  let d1 = decisions p1 and d2 = decisions p2 in
  Alcotest.(check (list bool)) "same seed, same decisions" d1 d2;
  Alcotest.(check string) "same seed, same fingerprint"
    (Fault.Plan.fingerprint p1) (Fault.Plan.fingerprint p2);
  Alcotest.(check bool) "rate 0.5 fires" true (Fault.Plan.faults_injected p1 > 0);
  let p3 = Fault.Plan.make ~rate:0.5 ~seed:18 ~classes:[ "io" ] () in
  Alcotest.(check bool) "different seed, different log" true
    (decisions p3 <> d1);
  (* A site outside the armed classes — and any unknown name — never
     faults, and with no armed plan nothing does. *)
  let p4 = Fault.Plan.make ~rate:1.0 ~seed:1 ~classes:[ "io" ] () in
  with_plan p4 (fun () ->
      Alcotest.(check bool) "class off" false (Fault.should_fail "conn.read");
      Alcotest.(check bool) "unknown site" false (Fault.should_fail "no.such.site"));
  Alcotest.(check bool) "disarmed" false (Fault.should_fail "store.write")

let test_budget_clock_skew () =
  (* With the clock class armed, a fraction of Fault.clock_now reads
     jump forward by an hour, so a budget whose deadline is far away
     can observe itself pressed.  The decision stream is pure in the
     seed, so this converges on the same consult every run. *)
  let plan = Fault.Plan.make ~rate:0.5 ~clock_skew_s:3600. ~seed:3 ~classes:[ "clock" ] () in
  with_plan plan (fun () ->
      let pressed_early = ref false in
      (let i = ref 0 in
       while (not !pressed_early) && !i < 100 do
         incr i;
         let b = Engine.Budget.make ~deadline_ms:1_800_000 () in
         let j = ref 0 in
         while (not !pressed_early) && !j < 10 do
           incr j;
           if Engine.Budget.pressed b then pressed_early := true
         done
       done);
      Alcotest.(check bool) "skewed clock presses a distant deadline" true !pressed_early);
  let b = Engine.Budget.make ~deadline_ms:1_800_000 () in
  Alcotest.(check bool) "no plan, no skew" false (Engine.Budget.pressed b)

let test_admission_drain_race () =
  (* Property: whatever the interleaving of try_push against a
     concurrent close + drain, no request is both shed and executed,
     and every accepted request executes exactly once. *)
  let round ~jobs ~per_pusher =
    let pushers = 2 in
    let total = pushers * per_pusher in
    let q = Admission.create ~capacity:64 in
    let accepted = Array.make total false in
    let executed = Array.make total 0 in
    let exec_lock = Mutex.create () in
    let workers =
      List.init jobs (fun _ ->
          Thread.create
            (fun () ->
              let rec loop () =
                match Admission.pop_batch q ~max:4 ~compatible:(fun _ _ -> true) with
                | None -> ()
                | Some items ->
                  Mutex.lock exec_lock;
                  List.iter (fun i -> executed.(i) <- executed.(i) + 1) items;
                  Mutex.unlock exec_lock;
                  Thread.yield ();
                  loop ()
              in
              loop ())
            ())
    in
    let push_threads =
      List.init pushers (fun p ->
          Thread.create
            (fun () ->
              for k = 0 to per_pusher - 1 do
                let i = (p * per_pusher) + k in
                accepted.(i) <- Admission.try_push q i;
                if k mod 8 = 0 then Thread.yield ()
              done)
            ())
    in
    (* Close while the pushers are still racing. *)
    Thread.yield ();
    Admission.close q;
    List.iter Thread.join push_threads;
    List.iter Thread.join workers;
    Array.iteri
      (fun i n ->
        if accepted.(i) then
          Alcotest.(check int) (Printf.sprintf "jobs %d: accepted %d runs once" jobs i) 1 n
        else
          Alcotest.(check int) (Printf.sprintf "jobs %d: shed %d never runs" jobs i) 0 n)
      executed
  in
  List.iter
    (fun jobs -> for _ = 1 to 5 do round ~jobs ~per_pusher:100 done)
    [ 1; 4 ]

let chaos_instances ~seed ~count = List.init count (Check.Gen.ith ~seed ~size:4)

let session_verdict sess (inst : Check.Instance.t) =
  match
    Client.call sess
      (Protocol.analyze ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)
  with
  | Error e -> Alcotest.failf "session call failed: %s" e
  | Ok (reply, attempts) ->
    Alcotest.(check bool) "session reply ok" true (Protocol.reply_ok reply);
    (match Json.member "verdict" reply with
    | Some v -> (Json.to_string v, attempts)
    | None -> Alcotest.fail "session reply without verdict")

let test_client_retry_conn_faults () =
  (* Under connection faults (resets, dropped replies, accept-time
     closes) the retrying session must still answer every request,
     with verdicts byte-identical to a fault-free local check. *)
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let insts = chaos_instances ~seed:101 ~count:8 in
  let plan = Fault.Plan.make ~rate:0.15 ~seed:11 ~classes:[ "conn" ] () in
  (* Each attempt crosses several conn sites, so the per-attempt
     failure odds are a few times the per-consult rate; give the
     session headroom beyond the default 8 attempts. *)
  let retry = { Client.default_retry with Client.max_attempts = 16 } in
  with_plan plan (fun () ->
      let sess = Client.session ~retry (`Unix sock) in
      for k = 0 to 39 do
        let inst = List.nth insts (k mod List.length insts) in
        let verdict, _ = session_verdict sess inst in
        Alcotest.(check string) "verdict matches direct check" (direct_verdict inst) verdict
      done;
      Client.close_session sess;
      Alcotest.(check bool) "plan fired" true (Fault.Plan.faults_injected plan > 0));
  shutdown server;
  Sys.remove store_path

let test_worker_supervision () =
  (* Killed batcher workers respawn without losing queued requests:
     every request is still answered and the death counter proves the
     supervisor actually ran. *)
  let server = boot () in
  let d, _, sock = server in
  let insts = chaos_instances ~seed:202 ~count:6 in
  let plan = Fault.Plan.make ~rate:0.5 ~seed:5 ~classes:[ "worker" ] () in
  with_plan plan (fun () ->
      let sess = Client.session (`Unix sock) in
      List.iteri
        (fun i inst ->
          ignore i;
          let verdict, _ = session_verdict sess inst in
          Alcotest.(check string) "served across deaths" (direct_verdict inst) verdict)
        (List.concat_map (fun _ -> insts) [ (); (); (); (); () ]);
      Client.close_session sess);
  Alcotest.(check bool) "workers died and respawned" true (Daemon.worker_deaths d > 0);
  shutdown server

let test_chaos_determinism () =
  let cfg =
    { Server.Chaos.default_config with seed = 9; requests = 120; rate = 0.15 }
  in
  let r1 = Server.Chaos.run cfg in
  let r2 = Server.Chaos.run cfg in
  Alcotest.(check (list string)) "log lines identical"
    r1.Server.Chaos.fault_log r2.Server.Chaos.fault_log;
  Alcotest.(check string) "same seed, same fault log"
    r1.Server.Chaos.fingerprint r2.Server.Chaos.fingerprint;
  Alcotest.(check bool) "run 1 converged" true r1.Server.Chaos.converged;
  Alcotest.(check bool) "run 2 converged" true r2.Server.Chaos.converged;
  Alcotest.(check bool) "faults fired" true (r1.Server.Chaos.faults > 0);
  Alcotest.(check int) "no lost acknowledged writes" 0 r1.Server.Chaos.lost_writes;
  Alcotest.(check int) "no disagreements" 0 r1.Server.Chaos.disagreements

let test_stale_socket_recovery () =
  (* A SIGKILLed daemon leaves its socket file behind; the next create
     must probe it, find it dead, and bind in its place. *)
  let path = fresh_path ".sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "stale socket present" true (Sys.file_exists path);
  let cfg =
    { (Daemon.default_config (Daemon.Unix_sock path)) with jobs = Some 2 }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  let conn = Client.connect (`Unix path) in
  let reply = Client.request conn (Protocol.ping ~id:(Json.Int 1) ()) in
  Alcotest.(check bool) "rebound over stale socket" true (Protocol.reply_ok reply);
  (* A live listener is never clobbered. *)
  Alcotest.(check bool) "live socket refused" true
    (try
       ignore (Daemon.create cfg);
       false
     with Failure _ -> true);
  Client.close conn;
  Daemon.initiate_drain d;
  Thread.join th;
  Alcotest.(check bool) "socket unlinked on clean exit" false (Sys.file_exists path);
  (* A path that is not a socket at all is refused, not unlinked. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "data");
  Alcotest.(check bool) "non-socket refused" true
    (try
       ignore (Daemon.create cfg);
       false
     with Failure _ -> true);
  Alcotest.(check bool) "non-socket preserved" true (Sys.file_exists path);
  Sys.remove path

(* --------------------------- versioned wire -------------------------- *)

module Wire = Server.Wire
module Poll = Server.Poll

let feed_all dec s = Wire.feed dec (Bytes.of_string s) 0 (String.length s)
let gen_inst i = Check.Gen.ith ~seed:77 ~size:4 i

let test_wire_roundtrip () =
  let doc = Json.to_string (Protocol.ping ~id:(Json.Int 3) ()) in
  List.iter
    (fun v ->
      let dec = Wire.decoder v in
      feed_all dec (Wire.encode v (Wire.Text doc));
      (match Wire.next dec with
      | Wire.Frame (Wire.Text s) ->
        Alcotest.(check string) (Wire.version_name v ^ " text roundtrip") doc s
      | _ -> Alcotest.fail "expected a text frame");
      Alcotest.(check bool) "decoder drained" true (Wire.next dec = Wire.Need_more);
      Alcotest.(check int) "nothing buffered" 0 (Wire.buffered dec))
    [ Wire.V1; Wire.V2 ];
  (* Binary analyze: every field survives, even delivered one byte at
     a time. *)
  let inst = gen_inst 0 in
  let mu = inst.Check.Instance.mu and tmat = inst.Check.Instance.tmat in
  let enc =
    Wire.encode Wire.V2 (Wire.Bin_analyze { id = 42; deadline_ms = Some 250; mu; tmat })
  in
  let dec = Wire.decoder Wire.V2 in
  String.iter
    (fun c ->
      (match Wire.next dec with
      | Wire.Need_more -> ()
      | _ -> Alcotest.fail "frame decoded before its last byte");
      feed_all dec (String.make 1 c))
    enc;
  (match Wire.next dec with
  | Wire.Frame (Wire.Bin_analyze { id; deadline_ms; mu = mu'; tmat = tmat' }) ->
    Alcotest.(check int) "analyze id" 42 id;
    Alcotest.(check (option int)) "analyze deadline" (Some 250) deadline_ms;
    Alcotest.(check (array int)) "analyze mu" mu mu';
    Alcotest.(check bool) "analyze matrix" true (Intmat.equal tmat tmat')
  | _ -> Alcotest.fail "expected a binary analyze frame");
  (* Binary verdict, witness branch included. *)
  let w =
    {
      Protocol.conflict_free = false;
      full_rank = true;
      decided_by = "oracle";
      exactness = "bounded";
      witness = Some [ 1; -2; 3 ];
    }
  in
  let dec = Wire.decoder Wire.V2 in
  feed_all dec (Wire.encode Wire.V2 (Wire.Bin_verdict { id = 7; verdict = w; store = "hit" }));
  (match Wire.next dec with
  | Wire.Frame (Wire.Bin_verdict { id; verdict; store }) ->
    Alcotest.(check int) "verdict id" 7 id;
    Alcotest.(check string) "verdict store" "hit" store;
    Alcotest.(check string) "verdict bytes"
      (Json.to_string (Protocol.json_of_wire w))
      (Json.to_string (Protocol.json_of_wire verdict))
  | _ -> Alcotest.fail "expected a binary verdict frame");
  (* v1 cannot carry binary frames or embedded newlines. *)
  Alcotest.(check bool) "v1 rejects binary frames" true
    (try
       ignore (Wire.encode Wire.V1 (Wire.Bin_verdict { id = 1; verdict = w; store = "hit" }));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "v1 rejects embedded newline" true
    (try
       ignore (Wire.encode Wire.V1 (Wire.Text "a\nb"));
       false
     with Invalid_argument _ -> true)

let test_wire_decoder_fuzz () =
  (* Seeded adversarial streams: truncations, bit flips, raw garbage,
     random chunk boundaries.  The decoder must never raise, never
     hoard more than it was fed, and stay poisoned once corrupt. *)
  let rng = Random.State.make [| 0xF5A2; 20260807 |] in
  let insts = Array.init 6 gen_inst in
  let ri n = Random.State.int rng n in
  let valid v =
    match ri 3 with
    | 0 -> Wire.encode v (Wire.Text (Json.to_string (Protocol.ping ~id:(Json.Int (ri 1000)) ())))
    | 1 ->
      let inst = insts.(ri 6) in
      let mu = inst.Check.Instance.mu and tmat = inst.Check.Instance.tmat in
      if v = Wire.V2 then
        Wire.encode v
          (Wire.Bin_analyze
             {
               id = ri 1000;
               deadline_ms = (if ri 2 = 0 then None else Some (ri 10_000));
               mu;
               tmat;
             })
      else Wire.encode v (Wire.Text (Json.to_string (Protocol.analyze ~id:(Json.Int (ri 1000)) ~mu tmat)))
    | _ -> Wire.encode v (Wire.Text (Json.to_string (Protocol.stats_request ())))
  in
  let mangle s =
    match ri 4 with
    | 0 -> String.sub s 0 (ri (String.length s))
    | 1 ->
      let b = Bytes.of_string s in
      let i = ri (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl ri 8)));
      Bytes.to_string b
    | 2 -> String.init (1 + ri 64) (fun _ -> Char.chr (ri 256))
    | _ -> s
  in
  List.iter
    (fun v ->
      for _round = 1 to 200 do
        let dec = Wire.decoder v in
        let stream = String.concat "" (List.init (1 + ri 4) (fun _ -> mangle (valid v))) in
        let n = String.length stream in
        let pos = ref 0 in
        (try
           while !pos < n do
             let len = min (n - !pos) (1 + ri 97) in
             Wire.feed dec (Bytes.of_string (String.sub stream !pos len)) 0 len;
             pos := !pos + len;
             let rec drain () =
               match Wire.next dec with
               | Wire.Frame _ -> drain ()
               | Wire.Need_more | Wire.Corrupt _ -> ()
             in
             drain ();
             Alcotest.(check bool) "buffer bounded" true (Wire.buffered dec <= n)
           done
         with e -> Alcotest.failf "decoder raised on mangled input: %s" (Printexc.to_string e));
        match Wire.next dec with
        | Wire.Corrupt msg -> (
          feed_all dec (valid v);
          match Wire.next dec with
          | Wire.Corrupt msg' -> Alcotest.(check string) "corrupt is sticky" msg msg'
          | _ -> Alcotest.fail "decoder resurrected after corruption")
        | Wire.Need_more | Wire.Frame _ -> ()
      done)
    [ Wire.V1; Wire.V2 ];
  (* v1 bytes on a v2 connection read as an absurd length prefix or a
     bad tag — rejected or starved, never decoded as a frame. *)
  let dec = Wire.decoder Wire.V2 in
  feed_all dec (Wire.encode Wire.V1 (Wire.Text (Json.to_string (Protocol.ping ~id:(Json.Int 1) ()))));
  match Wire.next dec with
  | Wire.Frame _ -> Alcotest.fail "v1 bytes decoded as a v2 frame"
  | Wire.Corrupt _ | Wire.Need_more -> ()

(* Raw-socket helpers: these tests forge frames byte by byte, which
   [Client] rightly makes impossible. *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let w = ref 0 in
  while !w < n do
    w := !w + Unix.write fd b !w (n - !w)
  done

let raw_send_line fd s = raw_send fd (s ^ "\n")

let raw_read_line fd =
  let buf = Buffer.create 256 in
  let one = Bytes.create 1 in
  let rec go () =
    match Unix.read fd one 0 1 with
    | 0 -> Alcotest.failf "eof before reply line (got %S)" (Buffer.contents buf)
    | _ ->
      let c = Bytes.get one 0 in
      if c = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let raw_read_exact fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    match Unix.read fd b !got (n - !got) with
    | 0 -> Alcotest.failf "eof after %d of %d bytes" !got n
    | r -> got := !got + r
  done;
  Bytes.to_string b

let raw_read_v2_text fd =
  let len = Int32.to_int (String.get_int32_be (raw_read_exact fd 4) 0) in
  let payload = raw_read_exact fd len in
  Alcotest.(check char) "json frame tag" 'J' payload.[0];
  String.sub payload 1 (len - 1)

let raw_expect_eof fd =
  match Unix.read fd (Bytes.create 1) 0 1 with
  | 0 -> ()
  | _ -> Alcotest.fail "expected the server to drop the connection"
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()

let parse_reply line =
  match Json.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable reply %S: %s" line e

let expect_parse_error line =
  let reply = parse_reply line in
  Alcotest.(check bool) "reply is an error" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "parse_error code" (Some "parse_error")
    (Protocol.error_code reply)

let test_live_oversized_frames () =
  let server = boot () in
  let _, _, sock = server in
  (* v1: a request line over the cap earns one structured parse_error,
     then the connection is dropped. *)
  let fd = raw_connect sock in
  let huge = String.make (Protocol.max_line_bytes + 4096) 'x' in
  (* The server may drop us mid-write once the cap trips; the reply is
     already buffered on our side by then. *)
  (try raw_send fd huge
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  expect_parse_error (raw_read_line fd);
  raw_expect_eof fd;
  Unix.close fd;
  (* v2: the length prefix alone condemns the frame — no payload ever
     crosses the wire, the reply is a length-prefixed parse_error,
     then EOF.  Same behavior as the v1 line cap. *)
  let fd = raw_connect sock in
  raw_send_line fd (Json.to_string (Protocol.hello ~id:(Json.Int 0) ~transport:"binary" ()));
  Alcotest.(check bool) "hello acked" true (Protocol.reply_ok (parse_reply (raw_read_line fd)));
  let header = Bytes.create 5 in
  Bytes.set_int32_be header 0 (Int32.of_int (Wire.max_frame_bytes + 1));
  Bytes.set header 4 'J';
  raw_send fd (Bytes.to_string header);
  expect_parse_error (raw_read_v2_text fd);
  raw_expect_eof fd;
  Unix.close fd;
  shutdown server

let test_live_hello_negotiation () =
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let insts = List.init 4 gen_inst in
  (* Negotiated binary connection: verdicts byte-identical to a direct
     local check, cold and warm. *)
  let conn = Client.connect ~transport:Wire.V2 (`Unix sock) in
  List.iter
    (fun inst ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) "binary cold verdict" (direct_verdict inst) verdict;
      Alcotest.(check string) "binary cold status" "miss" status)
    insts;
  List.iter
    (fun inst ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) "binary warm verdict" (direct_verdict inst) verdict;
      Alcotest.(check string) "binary warm status" "hit" status)
    insts;
  let stats = Client.request conn (Protocol.stats_request ~id:(Json.Int 9) ()) in
  (match Json.member "transport" stats with
  | Some tr -> (
    match (Json.member "max" tr, Json.member "binary_negotiated" tr) with
    | Some (Json.Str "binary"), Some (Json.Int n) ->
      Alcotest.(check bool) "binary connection counted" true (n >= 1)
    | _ -> Alcotest.fail "stats without transport.max/binary_negotiated")
  | None -> Alcotest.fail "stats reply without transport");
  Client.close conn;
  (* An unknown transport name is a bad_request; the connection stays
     as it was, on v1. *)
  let fd = raw_connect sock in
  raw_send_line fd (Json.to_string (Protocol.hello ~id:(Json.Int 1) ~transport:"carrier-pigeon" ()));
  let reply = parse_reply (raw_read_line fd) in
  Alcotest.(check bool) "unknown transport refused" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "bad_request" (Some "bad_request") (Protocol.error_code reply);
  raw_send_line fd (Json.to_string (Protocol.ping ~id:(Json.Int 2) ()));
  Alcotest.(check bool) "connection survives the refusal" true
    (Protocol.reply_ok (parse_reply (raw_read_line fd)));
  Unix.close fd;
  shutdown server;
  Sys.remove store_path;
  (* A server pinned to v1 refuses the upgrade; json clients are
     unaffected. *)
  let sock = fresh_path ".sock" in
  let cfg =
    { (Daemon.default_config (Daemon.Unix_sock sock)) with
      jobs = Some 2;
      max_transport = Wire.V1 }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  (match Client.connect ~transport:Wire.V2 (`Unix sock) with
  | exception Failure _ -> ()
  | conn ->
    Client.close conn;
    Alcotest.fail "v1-pinned server accepted the binary transport");
  let conn = Client.connect (`Unix sock) in
  Alcotest.(check bool) "json still served" true
    (Protocol.reply_ok (Client.request conn (Protocol.ping ~id:(Json.Int 3) ())));
  Client.close conn;
  Daemon.initiate_drain d;
  Thread.join th

let test_singleflight_coalescing () =
  (* N identical cold analyzes arriving while the only worker is
     pinned on a slow search: exactly one analysis dispatch, one store
     append, and N acks with byte-identical verdicts. *)
  let round jobs =
    let sock = fresh_path ".sock" in
    let store_path = fresh_path ".store" in
    let cfg =
      { (Daemon.default_config (Daemon.Unix_sock sock)) with
        jobs = Some jobs;
        max_inflight = 1;
        batch_max = 1;
        store_path = Some store_path }
    in
    let d = Daemon.create cfg in
    let th = Thread.create Daemon.run d in
    let inst = Check.Gen.ith ~seed:33 ~size:4 0 in
    let n = 8 in
    let fd = raw_connect sock in
    (* One write: the slow job, the identical burst right behind it.
       The loop thread parks all N in one singleflight group long
       before the worker reaches the leader. *)
    let burst = Buffer.create 1024 in
    Buffer.add_string burst
      (Json.to_string (Protocol.search ~id:(Json.Int 0) ~pareto:true ~algorithm:"matmul" ~mu:4 ()));
    Buffer.add_char burst '\n';
    for i = 1 to n do
      Buffer.add_string burst
        (Json.to_string
           (Protocol.analyze ~id:(Json.Int i) ~mu:inst.Check.Instance.mu
              inst.Check.Instance.tmat));
      Buffer.add_char burst '\n'
    done;
    raw_send fd (Buffer.contents burst);
    let replies = Hashtbl.create 16 in
    for _ = 0 to n do
      let reply = parse_reply (raw_read_line fd) in
      match Protocol.reply_id reply with
      | Json.Int i -> Hashtbl.replace replies i reply
      | _ -> Alcotest.fail "reply without integer id"
    done;
    let expected = direct_verdict inst in
    for i = 1 to n do
      match Hashtbl.find_opt replies i with
      | None -> Alcotest.failf "missing reply %d" i
      | Some reply ->
        Alcotest.(check bool) (Printf.sprintf "jobs %d: reply %d ok" jobs i) true
          (Protocol.reply_ok reply);
        (match Json.member "verdict" reply with
        | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "jobs %d: verdict %d byte-identical" jobs i)
            expected (Json.to_string v)
        | None -> Alcotest.fail "analyze reply without verdict");
        (match Json.member "store" reply with
        | Some (Json.Str s) ->
          Alcotest.(check string) (Printf.sprintf "jobs %d: store status %d" jobs i) "miss" s
        | _ -> Alcotest.fail "analyze reply without store status")
    done;
    (* The daemon's own counters agree: one group, N-1 coalesced, one
       append. *)
    raw_send_line fd (Json.to_string (Protocol.stats_request ~id:(Json.Int 99) ()));
    let stats = parse_reply (raw_read_line fd) in
    (match Json.member "singleflight" stats with
    | Some sf -> (
      match (Json.member "groups" sf, Json.member "coalesced" sf) with
      | Some (Json.Int g), Some (Json.Int c) ->
        Alcotest.(check int) (Printf.sprintf "jobs %d: one group" jobs) 1 g;
        Alcotest.(check int) (Printf.sprintf "jobs %d: followers coalesced" jobs) (n - 1) c
      | _ -> Alcotest.fail "stats without singleflight.groups/coalesced")
    | None -> Alcotest.fail "stats reply without singleflight");
    (match Json.member "store" stats with
    | Some st -> (
      match Json.member "appended" st with
      | Some (Json.Int a) ->
        Alcotest.(check int) (Printf.sprintf "jobs %d: one store append" jobs) 1 a
      | _ -> Alcotest.fail "stats without store.appended")
    | None -> Alcotest.fail "stats reply without store");
    Unix.close fd;
    Daemon.initiate_drain d;
    Thread.join th;
    (* Reopening the journal shows exactly one persisted record, and
       it is the verdict everyone was acked with. *)
    let s = Store.open_ store_path in
    Alcotest.(check int)
      (Printf.sprintf "jobs %d: one journal record" jobs)
      1 (Store.stats s).Store.loaded;
    Alcotest.(check bool) (Printf.sprintf "jobs %d: the record survives" jobs) true
      (Store.find s ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat <> None);
    Store.close s;
    Sys.remove store_path
  in
  List.iter round [ 1; 4 ]

let test_live_transport_matrix () =
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  (* The same instance stream over both dialects, against the same
     store: three-way byte-identical verdicts. *)
  let insts = List.init 6 gen_inst in
  let cj = Client.connect (`Unix sock) in
  let cb = Client.connect ~transport:Wire.V2 (`Unix sock) in
  List.iter
    (fun inst ->
      let vj, _ = analyze_via cj inst in
      let vb, _ = analyze_via cb inst in
      let direct = direct_verdict inst in
      Alcotest.(check string) "json matches direct" direct vj;
      Alcotest.(check string) "binary matches json" vj vb)
    insts;
  Client.close cj;
  Client.close cb;
  (* Pipelined verified load over the binary transport: requests go
     out as 'A' frames, replies are id-matched (warm answers overtake
     cold ones), every verdict checked against a local check. *)
  let report =
    Client.load (`Unix sock)
      { Client.default_load with
        Client.requests = 400;
        concurrency = 4;
        distinct = 16;
        seed = 5;
        verify = true;
        transport = Wire.V2;
        pipeline = 8 }
  in
  Alcotest.(check int) "all requests answered ok" 400 report.Client.ok;
  Alcotest.(check int) "no disagreements" 0 report.Client.disagreements;
  Alcotest.(check int) "no transport errors" 0 report.Client.errors;
  Alcotest.(check string) "negotiated binary" "binary" report.Client.transport;
  shutdown server;
  Sys.remove store_path

let test_chaos_binary_transport () =
  (* The chaos harness over the negotiated binary framing: same
     convergence contract, and the fault log is still deterministic in
     the seed (per transport — the hello exchange adds consults). *)
  let cfg =
    { Server.Chaos.default_config with
      seed = 10;
      requests = 100;
      rate = 0.12;
      transport = Wire.V2 }
  in
  let r1 = Server.Chaos.run cfg in
  let r2 = Server.Chaos.run cfg in
  Alcotest.(check string) "binary session negotiated" "binary" r1.Server.Chaos.transport;
  Alcotest.(check (list string)) "same seed, same fault log"
    r1.Server.Chaos.fault_log r2.Server.Chaos.fault_log;
  Alcotest.(check bool) "run 1 converged" true r1.Server.Chaos.converged;
  Alcotest.(check bool) "run 2 converged" true r2.Server.Chaos.converged;
  Alcotest.(check int) "no lost acked writes" 0 r1.Server.Chaos.lost_writes;
  Alcotest.(check bool) "faults fired" true (r1.Server.Chaos.faults > 0)

let test_poll_readiness () =
  let r, w = Unix.pipe () in
  let want_read = { Poll.want_read = true; want_write = false } in
  let want_write = { Poll.want_read = false; want_write = true } in
  (* An idle pipe reports nothing readable, even at a zero timeout. *)
  let evs = Poll.wait [ (r, want_read) ] ~timeout_ms:0 in
  Alcotest.(check bool) "idle pipe not readable" true
    (List.for_all (fun (_, e) -> not e.Poll.ready_read) evs);
  ignore (Unix.write w (Bytes.of_string "x") 0 1);
  let evs = Poll.wait [ (r, want_read); (w, want_write) ] ~timeout_ms:1000 in
  Alcotest.(check bool) "readable after write" true
    (List.exists (fun (fd, e) -> fd = r && e.Poll.ready_read) evs);
  Alcotest.(check bool) "pipe writable" true
    (List.exists (fun (fd, e) -> fd = w && e.Poll.ready_write) evs);
  ignore (Unix.read r (Bytes.create 8) 0 8);
  Unix.close w;
  (* EOF surfaces as readability (the read then returns 0), whichever
     backend is in use. *)
  let evs = Poll.wait [ (r, want_read) ] ~timeout_ms:1000 in
  Alcotest.(check bool) "eof is readable" true
    (List.exists (fun (fd, e) -> fd = r && (e.Poll.ready_read || e.Poll.ready_error)) evs);
  Unix.close r;
  ignore (Poll.backend ())


(* ------------------------- gray-failure tier ------------------------ *)

let test_deadline_exceeded_no_dispatch () =
  (* An analyze whose remaining budget is already spent on arrival must
     be answered [deadline_exceeded] before any dispatch: the
     [analysis.queries] counter (bumped by every real Analysis.check)
     must not move. *)
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let inst = Check.Gen.ith ~seed:77 ~size:4 0 in
  let queries = Obs.Metrics.counter "analysis.queries" in
  let before = Obs.Metrics.value queries in
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 1) ~deadline_ms:0 ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check bool) "expired budget rejected" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "deadline_exceeded code"
    (Some "deadline_exceeded") (Protocol.error_code reply);
  Alcotest.(check int) "no Analysis.check dispatched" before
    (Obs.Metrics.value queries);
  (* A negative stamp (an even staler forward) is equally dead. *)
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 2) ~deadline_ms:(-5) ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check (option string)) "negative budget too" (Some "deadline_exceeded")
    (Protocol.error_code reply);
  Alcotest.(check int) "still no dispatch" before (Obs.Metrics.value queries);
  (* The same request with headroom goes through and computes. *)
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 3) ~deadline_ms:60_000 ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check bool) "live budget answers" true (Protocol.reply_ok reply);
  Alcotest.(check bool) "dispatch counted" true (Obs.Metrics.value queries > before);
  Client.close conn;
  shutdown server

let drive_limiter lim ~threads ~per_thread ~latency_ms =
  let ths =
    List.init threads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              while not (Server.Limiter.try_admit lim) do
                Thread.yield ()
              done;
              Server.Limiter.release lim ~latency_ms
            done)
          ())
  in
  List.iter Thread.join ths

let test_limiter_aimd () =
  (* The AIMD property at 1 and 4 driver threads: sustained
     over-target completions walk the limit down to the floor;
     sustained fast completions walk it back to the ceiling.  Windows
     are counted in completions, not seconds, so the property is
     schedule-independent. *)
  List.iter
    (fun threads ->
      let lim = Server.Limiter.create ~min_limit:2 ~target_ms:5. ~max_limit:64 () in
      Alcotest.(check int) "starts wide open" 64 (Server.Limiter.limit lim);
      drive_limiter lim ~threads ~per_thread:(800 / threads) ~latency_ms:50.;
      Alcotest.(check bool)
        (Printf.sprintf "slow completions shrink the limit (threads=%d)" threads)
        true
        (Server.Limiter.limit lim <= 8);
      Alcotest.(check bool) "multiple decreases" true (Server.Limiter.decreases lim > 2);
      drive_limiter lim ~threads ~per_thread:(4000 / threads) ~latency_ms:0.5;
      Alcotest.(check int)
        (Printf.sprintf "fast completions restore the ceiling (threads=%d)" threads)
        64 (Server.Limiter.limit lim);
      Alcotest.(check bool) "floor respected" true (Server.Limiter.limit lim >= 2))
    [ 1; 4 ]

let test_retry_token_bucket () =
  (* Against a permanently unresponsive server (accepts, never
     replies) the session's re-issues are capped by the retry token
     bucket, not by max_attempts: budget 2 with no refill means one
     initial attempt plus exactly two retries — three accepted
     connections — before the call gives up. *)
  let path = fresh_path ".sock" in
  let listener = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 8;
  let accepts = Atomic.make 0 in
  let stop = Atomic.make false in
  let acceptor =
    Thread.create
      (fun () ->
        let held = ref [] in
        (try
           while not (Atomic.get stop) do
             let fd, _ = Unix.accept listener in
             Atomic.incr accepts;
             held := fd :: !held
           done
         with Unix.Unix_error _ -> ());
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !held)
      ()
  in
  let session =
    Client.session
      ~retry:
        {
          Client.default_retry with
          max_attempts = 8;
          base_delay_ms = 1.;
          max_delay_ms = 2.;
          timeout_ms = 40.;
          retry_budget = 2;
          retry_refill_per_s = 0.;
        }
      (`Unix path)
  in
  (match Client.call session (Protocol.ping ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unresponsive server produced a reply");
  Client.close_session session;
  Atomic.set stop true;
  (try Unix.shutdown listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close listener with Unix.Unix_error _ -> ());
  Thread.join acceptor;
  Sys.remove path;
  Alcotest.(check int) "budget caps re-issues" 3 (Atomic.get accepts)

let test_gray_chaos_determinism () =
  (* Latency faults are ambient: they stall, they count, but they are
     never logged per event — so arming them alongside a logged class
     keeps the same-seed fault log byte-identical even though stall
     timing is not schedule-deterministic. *)
  let cfg =
    { Server.Chaos.default_config with
      seed = 23;
      requests = 100;
      rate = 0.1;
      classes = [ "latency"; "io" ];
      delay_ms = 5 }
  in
  let r1 = Server.Chaos.run cfg in
  let r2 = Server.Chaos.run cfg in
  Alcotest.(check string) "same seed, same fingerprint" r1.Server.Chaos.fingerprint
    r2.Server.Chaos.fingerprint;
  Alcotest.(check (list string)) "same seed, same fault log" r1.Server.Chaos.fault_log
    r2.Server.Chaos.fault_log;
  Alcotest.(check bool) "stalls were applied" true (r1.Server.Chaos.delays > 0);
  Alcotest.(check bool) "run 1 converged" true r1.Server.Chaos.converged;
  Alcotest.(check bool) "run 2 converged" true r2.Server.Chaos.converged;
  (* The arm-time record of each enabled latency site is in the log. *)
  Alcotest.(check bool) "latency sites recorded at arm" true
    (List.exists
       (fun l -> String.length l >= 9 && String.sub l 0 9 = "conn.slow")
       r1.Server.Chaos.fault_log)


let suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store crash recovery" `Quick test_store_crash_recovery;
    Alcotest.test_case "store corrupt record" `Quick test_store_corrupt_record;
    Alcotest.test_case "store foreign file" `Quick test_store_foreign_file;
    Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
    Alcotest.test_case "admission batching" `Quick test_admission_batching;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "protocol id echo" `Quick test_protocol_id_echo;
    Alcotest.test_case "live corpus differential" `Quick test_live_corpus_differential;
    Alcotest.test_case "live replay op" `Quick test_live_replay_op;
    Alcotest.test_case "live bad requests" `Quick test_live_bad_requests;
    Alcotest.test_case "live drain rejects" `Quick test_live_drain_rejects;
    Alcotest.test_case "live verified load" `Quick test_live_load_verified;
    Alcotest.test_case "fault plan determinism" `Quick test_fault_plan_determinism;
    Alcotest.test_case "budget clock skew" `Quick test_budget_clock_skew;
    Alcotest.test_case "admission drain race" `Quick test_admission_drain_race;
    Alcotest.test_case "client retry under conn faults" `Quick test_client_retry_conn_faults;
    Alcotest.test_case "worker supervision" `Quick test_worker_supervision;
    Alcotest.test_case "chaos determinism" `Quick test_chaos_determinism;
    Alcotest.test_case "stale socket recovery" `Quick test_stale_socket_recovery;
    Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire decoder fuzz" `Quick test_wire_decoder_fuzz;
    Alcotest.test_case "live oversized frames" `Quick test_live_oversized_frames;
    Alcotest.test_case "live hello negotiation" `Quick test_live_hello_negotiation;
    Alcotest.test_case "singleflight coalescing" `Quick test_singleflight_coalescing;
    Alcotest.test_case "live transport matrix" `Quick test_live_transport_matrix;
    Alcotest.test_case "chaos binary transport" `Quick test_chaos_binary_transport;
    Alcotest.test_case "poll readiness" `Quick test_poll_readiness;
    Alcotest.test_case "deadline exceeded no dispatch" `Quick
      test_deadline_exceeded_no_dispatch;
    Alcotest.test_case "limiter aimd property" `Quick test_limiter_aimd;
    Alcotest.test_case "retry token bucket" `Quick test_retry_token_bucket;
    Alcotest.test_case "gray chaos determinism" `Quick test_gray_chaos_determinism;
  ]
