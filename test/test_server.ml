(* Tests for the mapping-query service: store persistence and crash
   recovery, admission control, the wire protocol, and a live
   differential run replaying the regression corpus through a real
   daemon (cold store, warm store, and after a restart). *)

module Store = Server.Store
module Protocol = Server.Protocol
module Admission = Server.Admission
module Daemon = Server.Daemon
module Client = Server.Client

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-test-%d-%d%s" (Unix.getpid ()) !counter suffix)

let mu1 = [| 4; 4; 4 |]
let t1 = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
let mu2 = [| 6; 6; 6; 6 |]
let t2 = Intmat.of_ints [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]

(* ------------------------------- store ------------------------------ *)

let test_store_roundtrip () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  Alcotest.(check bool) "cold miss" true (Store.find s ~mu:mu1 t1 = None);
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Alcotest.(check bool) "hit after add" true (Store.find s ~mu:mu1 t1 = Some e1);
  Store.close s;
  (* A fresh process sees everything. *)
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "loaded" 2 st.Store.loaded;
  Alcotest.(check int) "nothing dropped" 0 st.Store.dropped_bytes;
  Alcotest.(check bool) "warm hit 1" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "warm hit 2" true (Store.find s ~mu:mu2 t2 = Some e2);
  (* Same mapping matrix, different bounds: a distinct key. *)
  Alcotest.(check bool) "distinct mu" true (Store.find s ~mu:[| 9; 9; 9 |] t1 = None);
  Store.close s;
  Sys.remove path

let test_store_crash_recovery () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  (* Tear the last record mid-line, as a crash between [write] and
     the terminating newline would. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Unix.truncate path (String.length full - 7);
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "one record survives" 1 st.Store.loaded;
  Alcotest.(check bool) "torn tail dropped" true (st.Store.dropped_bytes > 0);
  Alcotest.(check bool) "survivor readable" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "torn record gone" true (Store.find s ~mu:mu2 t2 = None);
  (* The journal is whole again: appends after recovery persist. *)
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  let s = Store.open_ path in
  Alcotest.(check int) "re-added persists" 2 (Store.stats s).Store.loaded;
  Alcotest.(check int) "clean reopen" 0 (Store.stats s).Store.dropped_bytes;
  Store.close s;
  Sys.remove path

let test_store_corrupt_record () =
  let path = fresh_path ".store" in
  let quarantine = path ^ ".quarantine" in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  let s = Store.open_ path in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  (* Flip a byte inside the first record: the checksum rejects it, the
     record is quarantined into the sidecar, and the independently
     checksummed record after it survives the compaction. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  let b = Bytes.of_string full in
  Bytes.set b (header_end + 3) 'Z';
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "later record survives" 1 st.Store.loaded;
  Alcotest.(check int) "corrupt record quarantined" 1 st.Store.quarantined;
  Alcotest.(check bool) "sidecar written" true (Sys.file_exists quarantine);
  Alcotest.(check bool) "survivor readable" true (Store.find s ~mu:mu2 t2 = Some e2);
  (* The quarantined key forces a miss until a fresh verdict
     re-verifies it... *)
  Alcotest.(check bool) "quarantined key misses" true (Store.find s ~mu:mu1 t1 = None);
  Store.add s ~mu:mu1 t1 e1;
  Alcotest.(check int) "re-add heals" 1 (Store.stats s).Store.healed;
  Alcotest.(check bool) "healed key hits" true (Store.find s ~mu:mu1 t1 = Some e1);
  Store.close s;
  (* ...and the healed journal replays clean: both records, no
     quarantine, no torn tail. *)
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "healed journal replays whole" 2 st.Store.loaded;
  Alcotest.(check int) "no quarantine after heal" 0 st.Store.quarantined;
  Alcotest.(check int) "no torn tail" 0 st.Store.dropped_bytes;
  Store.close s;
  Sys.remove path;
  Sys.remove quarantine

let test_store_foreign_file () =
  let path = fresh_path ".store" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a journal\n");
  Alcotest.(check bool) "refuses foreign file" true
    (try
       ignore (Store.open_ path);
       false
     with Failure _ -> true);
  Sys.remove path

(* ----------------------------- admission ---------------------------- *)

let test_admission_shedding () =
  let q = Admission.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Admission.try_push q 1);
  Alcotest.(check bool) "push 2" true (Admission.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Admission.try_push q 3);
  Alcotest.(check int) "depth" 2 (Admission.length q);
  Admission.close q;
  Alcotest.(check bool) "push after close shed" false (Admission.try_push q 4);
  (* Queued items still drain after close... *)
  Alcotest.(check (option (list int))) "drain" (Some [ 1; 2 ])
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true));
  (* ...then consumers get the end-of-queue signal. *)
  Alcotest.(check (option (list int))) "closed" None
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true))

let test_admission_batching () =
  let q = Admission.create ~capacity:16 in
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 2; 4; 6; 7; 8 ];
  let even a b = a mod 2 = b mod 2 in
  (* The batch is the compatible prefix, cut at the first mismatch. *)
  Alcotest.(check (option (list int))) "even prefix" (Some [ 2; 4; 6 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  Alcotest.(check (option (list int))) "odd singleton" (Some [ 7 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  (* [max] bounds the batch even when everything is compatible. *)
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 10; 12 ];
  Alcotest.(check (option (list int))) "max cut" (Some [ 8; 10 ])
    (Admission.pop_batch q ~max:2 ~compatible:even)

(* ----------------------------- protocol ----------------------------- *)

let test_protocol_roundtrip () =
  let check_roundtrip name json expect_op =
    match Protocol.request_of_line (Json.to_string json) with
    | Ok env -> Alcotest.(check string) name expect_op (Protocol.op_name env.Protocol.req)
    | Error e -> Alcotest.failf "%s rejected: %s" name e
  in
  check_roundtrip "analyze" (Protocol.analyze ~id:(Json.Int 1) ~mu:mu1 t1) "analyze";
  check_roundtrip "analyze w/ deadline"
    (Protocol.analyze ~deadline_ms:50 ~mu:mu1 t1)
    "analyze";
  check_roundtrip "search"
    (Protocol.search ~algorithm:"matmul" ~mu:3 ~pareto:true ~array_dim:1 ())
    "search";
  check_roundtrip "simulate"
    (Protocol.simulate ~algorithm:"matmul" ~mu:2 ~pi:(Intvec.of_ints [ 1; 1; 1 ]) ())
    "simulate";
  check_roundtrip "replay"
    (Protocol.replay (Check.Instance.make ~mu:mu1 t1))
    "replay";
  check_roundtrip "ping" (Protocol.ping ~id:(Json.Str "x") ()) "ping";
  check_roundtrip "stats" (Protocol.stats_request ()) "stats";
  check_roundtrip "drain" (Protocol.drain ()) "drain"

let test_protocol_rejects () =
  let rejected line =
    match Protocol.request_of_line line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (rejected "nope");
  Alcotest.(check bool) "not an object" true (rejected "[1,2]");
  Alcotest.(check bool) "missing op" true (rejected {|{"id":1}|});
  Alcotest.(check bool) "unknown op" true (rejected {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "mu arity mismatch" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,4]}|});
  Alcotest.(check bool) "mu below 1" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,0,4]}|});
  Alcotest.(check bool) "ragged matrix" true
    (rejected {|{"op":"analyze","t":[[1,1],[1]],"mu":[4,4]}|})

let test_protocol_id_echo () =
  match Protocol.request_of_line {|{"op":"ping","id":{"seq":7}}|} with
  | Ok env ->
    let reply = Protocol.ok_reply ~id:env.Protocol.id ~op:"ping" [] in
    Alcotest.(check string) "structured id echoed"
      {|{"id":{"seq":7},"ok":true,"op":"ping"}|}
      (Json.to_string reply);
    Alcotest.(check bool) "reply_ok" true (Protocol.reply_ok reply)
  | Error e -> Alcotest.failf "ping with structured id rejected: %s" e

(* ----------------------------- live server -------------------------- *)

let boot ?store_path () =
  let sock = fresh_path ".sock" in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock sock)) with
      jobs = Some 2;
      store_path;
    }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  (d, th, sock)

let shutdown (d, th, _sock) =
  Daemon.initiate_drain d;
  Thread.join th

let direct_verdict (inst : Check.Instance.t) =
  Json.to_string
    (Protocol.json_of_wire
       (Protocol.wire_of_verdict
          (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)))

let analyze_via conn (inst : Check.Instance.t) =
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 0) ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check bool) "reply ok" true (Protocol.reply_ok reply);
  let verdict =
    match Json.member "verdict" reply with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail "analyze reply without verdict"
  in
  let status =
    match Json.member "store" reply with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail "analyze reply without store status"
  in
  (verdict, status)

let test_live_corpus_differential () =
  let corpus = Check.Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus present" true (corpus <> []);
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  (* Cold pass: every verdict is computed, persisted, and must render
     byte-identically to a direct local Analysis.check. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("cold " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("cold status " ^ name) "miss" status)
    corpus;
  (* Warm pass on the same server: served from the store, same bytes. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("warm " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("warm status " ^ name) "hit" status)
    corpus;
  Client.close conn;
  shutdown server;
  (* Restart on the same journal: the store survives the round trip
     and the warm hits keep their bytes. *)
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("post-restart " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("post-restart status " ^ name) "hit" status)
    corpus;
  let stats = Client.request conn (Protocol.stats_request ~id:(Json.Int 1) ()) in
  (match Json.member "store" stats with
  | Some store -> (
    match (Json.member "loaded" store, Json.member "hits" store) with
    | Some (Json.Int loaded), Some (Json.Int hits) ->
      Alcotest.(check bool) "journal replayed at boot" true (loaded > 0);
      Alcotest.(check bool) "post-restart hit rate > 0" true (hits > 0)
    | _ -> Alcotest.fail "stats reply without store.loaded/store.hits")
  | None -> Alcotest.fail "stats reply without store");
  Client.close conn;
  shutdown server;
  Sys.remove store_path

let test_live_replay_op () =
  let corpus = Check.Corpus.load_dir "corpus" in
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let reply = Client.request conn (Protocol.replay ~id:(Json.Str name) inst) in
      Alcotest.(check bool) (name ^ " ok") true (Protocol.reply_ok reply);
      match Json.member "agree" reply with
      | Some (Json.Bool agree) ->
        Alcotest.(check bool) (name ^ " fast path agrees with oracle") true agree
      | Some Json.Null -> () (* index set too large for the oracle *)
      | _ -> Alcotest.fail "replay reply without agree")
    corpus;
  Client.close conn;
  shutdown server

let test_live_bad_requests () =
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Json.Str "not an object") in
  Alcotest.(check bool) "rejected" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  let reply =
    Client.request conn
      (Json.Obj [ ("op", Json.Str "search"); ("algorithm", Json.Str "nope"); ("mu", Json.Int 2) ])
  in
  Alcotest.(check (option string)) "unknown algorithm is bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  (* Unknown-algorithm failures must not poison the connection. *)
  let reply = Client.request conn (Protocol.ping ~id:(Json.Int 9) ()) in
  Alcotest.(check bool) "still serving" true (Protocol.reply_ok reply);
  Client.close conn;
  shutdown server

let test_live_drain_rejects () =
  let server = boot () in
  let d, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Protocol.drain ~id:(Json.Int 1) ()) in
  Alcotest.(check bool) "drain acknowledged" true (Protocol.reply_ok reply);
  (* After the ack the drain runs concurrently, so the follow-up is
     refused one of two ways: an explicit "draining" reply if the
     connection thread is still reading, or a closed socket if the
     shutdown won the race.  Only a successful verdict would be a
     bug. *)
  (match Client.request conn (Protocol.analyze ~id:(Json.Int 2) ~mu:mu1 t1) with
  | reply ->
    Alcotest.(check (option string)) "queued work refused while draining"
      (Some "draining") (Protocol.error_code reply)
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  | exception Failure _ -> ());
  ignore (Daemon.stats_fields d);
  Client.close conn;
  shutdown server

let test_live_load_verified () =
  (* A small version of the CI smoke run: concurrent verified load,
     zero disagreements, zero unexplained sheds. *)
  let server = boot ~store_path:(fresh_path ".store") () in
  let _, _, sock = server in
  let r =
    Client.load (`Unix sock)
      { Client.default_load with requests = 200; concurrency = 4; distinct = 16 }
  in
  Alcotest.(check int) "no disagreements" 0 r.Client.disagreements;
  Alcotest.(check int) "no transport errors" 0 r.Client.errors;
  Alcotest.(check int) "no sheds at default capacity" 0 r.Client.shed;
  Alcotest.(check int) "all replies ok" 200 r.Client.ok;
  shutdown server

(* --------------------------- fault injection ------------------------ *)

(* Every test that arms a plan must disarm it on all paths, or the
   fault would leak into unrelated tests. *)
let with_plan plan f = Fault.Plan.arm plan; Fun.protect ~finally:Fault.Plan.disarm f

let test_fault_plan_determinism () =
  let decisions plan =
    with_plan plan (fun () ->
        List.init 200 (fun _ -> Fault.should_fail "store.write"))
  in
  let p1 = Fault.Plan.make ~rate:0.5 ~seed:17 ~classes:[ "io" ] () in
  let p2 = Fault.Plan.make ~rate:0.5 ~seed:17 ~classes:[ "io" ] () in
  let d1 = decisions p1 and d2 = decisions p2 in
  Alcotest.(check (list bool)) "same seed, same decisions" d1 d2;
  Alcotest.(check string) "same seed, same fingerprint"
    (Fault.Plan.fingerprint p1) (Fault.Plan.fingerprint p2);
  Alcotest.(check bool) "rate 0.5 fires" true (Fault.Plan.faults_injected p1 > 0);
  let p3 = Fault.Plan.make ~rate:0.5 ~seed:18 ~classes:[ "io" ] () in
  Alcotest.(check bool) "different seed, different log" true
    (decisions p3 <> d1);
  (* A site outside the armed classes — and any unknown name — never
     faults, and with no armed plan nothing does. *)
  let p4 = Fault.Plan.make ~rate:1.0 ~seed:1 ~classes:[ "io" ] () in
  with_plan p4 (fun () ->
      Alcotest.(check bool) "class off" false (Fault.should_fail "conn.read");
      Alcotest.(check bool) "unknown site" false (Fault.should_fail "no.such.site"));
  Alcotest.(check bool) "disarmed" false (Fault.should_fail "store.write")

let test_budget_clock_skew () =
  (* With the clock class armed, a fraction of Fault.clock_now reads
     jump forward by an hour, so a budget whose deadline is far away
     can observe itself pressed.  The decision stream is pure in the
     seed, so this converges on the same consult every run. *)
  let plan = Fault.Plan.make ~rate:0.5 ~clock_skew_s:3600. ~seed:3 ~classes:[ "clock" ] () in
  with_plan plan (fun () ->
      let pressed_early = ref false in
      (let i = ref 0 in
       while (not !pressed_early) && !i < 100 do
         incr i;
         let b = Engine.Budget.make ~deadline_ms:1_800_000 () in
         let j = ref 0 in
         while (not !pressed_early) && !j < 10 do
           incr j;
           if Engine.Budget.pressed b then pressed_early := true
         done
       done);
      Alcotest.(check bool) "skewed clock presses a distant deadline" true !pressed_early);
  let b = Engine.Budget.make ~deadline_ms:1_800_000 () in
  Alcotest.(check bool) "no plan, no skew" false (Engine.Budget.pressed b)

let test_admission_drain_race () =
  (* Property: whatever the interleaving of try_push against a
     concurrent close + drain, no request is both shed and executed,
     and every accepted request executes exactly once. *)
  let round ~jobs ~per_pusher =
    let pushers = 2 in
    let total = pushers * per_pusher in
    let q = Admission.create ~capacity:64 in
    let accepted = Array.make total false in
    let executed = Array.make total 0 in
    let exec_lock = Mutex.create () in
    let workers =
      List.init jobs (fun _ ->
          Thread.create
            (fun () ->
              let rec loop () =
                match Admission.pop_batch q ~max:4 ~compatible:(fun _ _ -> true) with
                | None -> ()
                | Some items ->
                  Mutex.lock exec_lock;
                  List.iter (fun i -> executed.(i) <- executed.(i) + 1) items;
                  Mutex.unlock exec_lock;
                  Thread.yield ();
                  loop ()
              in
              loop ())
            ())
    in
    let push_threads =
      List.init pushers (fun p ->
          Thread.create
            (fun () ->
              for k = 0 to per_pusher - 1 do
                let i = (p * per_pusher) + k in
                accepted.(i) <- Admission.try_push q i;
                if k mod 8 = 0 then Thread.yield ()
              done)
            ())
    in
    (* Close while the pushers are still racing. *)
    Thread.yield ();
    Admission.close q;
    List.iter Thread.join push_threads;
    List.iter Thread.join workers;
    Array.iteri
      (fun i n ->
        if accepted.(i) then
          Alcotest.(check int) (Printf.sprintf "jobs %d: accepted %d runs once" jobs i) 1 n
        else
          Alcotest.(check int) (Printf.sprintf "jobs %d: shed %d never runs" jobs i) 0 n)
      executed
  in
  List.iter
    (fun jobs -> for _ = 1 to 5 do round ~jobs ~per_pusher:100 done)
    [ 1; 4 ]

let chaos_instances ~seed ~count = List.init count (Check.Gen.ith ~seed ~size:4)

let session_verdict sess (inst : Check.Instance.t) =
  match
    Client.call sess
      (Protocol.analyze ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)
  with
  | Error e -> Alcotest.failf "session call failed: %s" e
  | Ok (reply, attempts) ->
    Alcotest.(check bool) "session reply ok" true (Protocol.reply_ok reply);
    (match Json.member "verdict" reply with
    | Some v -> (Json.to_string v, attempts)
    | None -> Alcotest.fail "session reply without verdict")

let test_client_retry_conn_faults () =
  (* Under connection faults (resets, dropped replies, accept-time
     closes) the retrying session must still answer every request,
     with verdicts byte-identical to a fault-free local check. *)
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let insts = chaos_instances ~seed:101 ~count:8 in
  let plan = Fault.Plan.make ~rate:0.15 ~seed:11 ~classes:[ "conn" ] () in
  (* Each attempt crosses several conn sites, so the per-attempt
     failure odds are a few times the per-consult rate; give the
     session headroom beyond the default 8 attempts. *)
  let retry = { Client.default_retry with Client.max_attempts = 16 } in
  with_plan plan (fun () ->
      let sess = Client.session ~retry (`Unix sock) in
      for k = 0 to 39 do
        let inst = List.nth insts (k mod List.length insts) in
        let verdict, _ = session_verdict sess inst in
        Alcotest.(check string) "verdict matches direct check" (direct_verdict inst) verdict
      done;
      Client.close_session sess;
      Alcotest.(check bool) "plan fired" true (Fault.Plan.faults_injected plan > 0));
  shutdown server;
  Sys.remove store_path

let test_worker_supervision () =
  (* Killed batcher workers respawn without losing queued requests:
     every request is still answered and the death counter proves the
     supervisor actually ran. *)
  let server = boot () in
  let d, _, sock = server in
  let insts = chaos_instances ~seed:202 ~count:6 in
  let plan = Fault.Plan.make ~rate:0.5 ~seed:5 ~classes:[ "worker" ] () in
  with_plan plan (fun () ->
      let sess = Client.session (`Unix sock) in
      List.iteri
        (fun i inst ->
          ignore i;
          let verdict, _ = session_verdict sess inst in
          Alcotest.(check string) "served across deaths" (direct_verdict inst) verdict)
        (List.concat_map (fun _ -> insts) [ (); (); (); (); () ]);
      Client.close_session sess);
  Alcotest.(check bool) "workers died and respawned" true (Daemon.worker_deaths d > 0);
  shutdown server

let test_chaos_determinism () =
  let cfg =
    { Server.Chaos.default_config with seed = 9; requests = 120; rate = 0.15 }
  in
  let r1 = Server.Chaos.run cfg in
  let r2 = Server.Chaos.run cfg in
  Alcotest.(check (list string)) "log lines identical"
    r1.Server.Chaos.fault_log r2.Server.Chaos.fault_log;
  Alcotest.(check string) "same seed, same fault log"
    r1.Server.Chaos.fingerprint r2.Server.Chaos.fingerprint;
  Alcotest.(check bool) "run 1 converged" true r1.Server.Chaos.converged;
  Alcotest.(check bool) "run 2 converged" true r2.Server.Chaos.converged;
  Alcotest.(check bool) "faults fired" true (r1.Server.Chaos.faults > 0);
  Alcotest.(check int) "no lost acknowledged writes" 0 r1.Server.Chaos.lost_writes;
  Alcotest.(check int) "no disagreements" 0 r1.Server.Chaos.disagreements

let test_stale_socket_recovery () =
  (* A SIGKILLed daemon leaves its socket file behind; the next create
     must probe it, find it dead, and bind in its place. *)
  let path = fresh_path ".sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  Alcotest.(check bool) "stale socket present" true (Sys.file_exists path);
  let cfg =
    { (Daemon.default_config (Daemon.Unix_sock path)) with jobs = Some 2 }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  let conn = Client.connect (`Unix path) in
  let reply = Client.request conn (Protocol.ping ~id:(Json.Int 1) ()) in
  Alcotest.(check bool) "rebound over stale socket" true (Protocol.reply_ok reply);
  (* A live listener is never clobbered. *)
  Alcotest.(check bool) "live socket refused" true
    (try
       ignore (Daemon.create cfg);
       false
     with Failure _ -> true);
  Client.close conn;
  Daemon.initiate_drain d;
  Thread.join th;
  Alcotest.(check bool) "socket unlinked on clean exit" false (Sys.file_exists path);
  (* A path that is not a socket at all is refused, not unlinked. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "data");
  Alcotest.(check bool) "non-socket refused" true
    (try
       ignore (Daemon.create cfg);
       false
     with Failure _ -> true);
  Alcotest.(check bool) "non-socket preserved" true (Sys.file_exists path);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store crash recovery" `Quick test_store_crash_recovery;
    Alcotest.test_case "store corrupt record" `Quick test_store_corrupt_record;
    Alcotest.test_case "store foreign file" `Quick test_store_foreign_file;
    Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
    Alcotest.test_case "admission batching" `Quick test_admission_batching;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "protocol id echo" `Quick test_protocol_id_echo;
    Alcotest.test_case "live corpus differential" `Quick test_live_corpus_differential;
    Alcotest.test_case "live replay op" `Quick test_live_replay_op;
    Alcotest.test_case "live bad requests" `Quick test_live_bad_requests;
    Alcotest.test_case "live drain rejects" `Quick test_live_drain_rejects;
    Alcotest.test_case "live verified load" `Quick test_live_load_verified;
    Alcotest.test_case "fault plan determinism" `Quick test_fault_plan_determinism;
    Alcotest.test_case "budget clock skew" `Quick test_budget_clock_skew;
    Alcotest.test_case "admission drain race" `Quick test_admission_drain_race;
    Alcotest.test_case "client retry under conn faults" `Quick test_client_retry_conn_faults;
    Alcotest.test_case "worker supervision" `Quick test_worker_supervision;
    Alcotest.test_case "chaos determinism" `Quick test_chaos_determinism;
    Alcotest.test_case "stale socket recovery" `Quick test_stale_socket_recovery;
  ]
