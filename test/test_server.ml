(* Tests for the mapping-query service: store persistence and crash
   recovery, admission control, the wire protocol, and a live
   differential run replaying the regression corpus through a real
   daemon (cold store, warm store, and after a restart). *)

module Store = Server.Store
module Protocol = Server.Protocol
module Admission = Server.Admission
module Daemon = Server.Daemon
module Client = Server.Client

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-test-%d-%d%s" (Unix.getpid ()) !counter suffix)

let mu1 = [| 4; 4; 4 |]
let t1 = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
let mu2 = [| 6; 6; 6; 6 |]
let t2 = Intmat.of_ints [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]

(* ------------------------------- store ------------------------------ *)

let test_store_roundtrip () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  Alcotest.(check bool) "cold miss" true (Store.find s ~mu:mu1 t1 = None);
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Alcotest.(check bool) "hit after add" true (Store.find s ~mu:mu1 t1 = Some e1);
  Store.close s;
  (* A fresh process sees everything. *)
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "loaded" 2 st.Store.loaded;
  Alcotest.(check int) "nothing dropped" 0 st.Store.dropped_bytes;
  Alcotest.(check bool) "warm hit 1" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "warm hit 2" true (Store.find s ~mu:mu2 t2 = Some e2);
  (* Same mapping matrix, different bounds: a distinct key. *)
  Alcotest.(check bool) "distinct mu" true (Store.find s ~mu:[| 9; 9; 9 |] t1 = None);
  Store.close s;
  Sys.remove path

let test_store_crash_recovery () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  (* Tear the last record mid-line, as a crash between [write] and
     the terminating newline would. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Unix.truncate path (String.length full - 7);
  let s = Store.open_ path in
  let st = Store.stats s in
  Alcotest.(check int) "one record survives" 1 st.Store.loaded;
  Alcotest.(check bool) "torn tail dropped" true (st.Store.dropped_bytes > 0);
  Alcotest.(check bool) "survivor readable" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "torn record gone" true (Store.find s ~mu:mu2 t2 = None);
  (* The journal is whole again: appends after recovery persist. *)
  Store.add s ~mu:mu2 t2 e2;
  Store.close s;
  let s = Store.open_ path in
  Alcotest.(check int) "re-added persists" 2 (Store.stats s).Store.loaded;
  Alcotest.(check int) "clean reopen" 0 (Store.stats s).Store.dropped_bytes;
  Store.close s;
  Sys.remove path

let test_store_corrupt_record () =
  let path = fresh_path ".store" in
  let s = Store.open_ path in
  Store.add s ~mu:mu1 t1 (Store.entry_of_verdict (Analysis.check ~mu:mu1 t1));
  Store.add s ~mu:mu2 t2 (Store.entry_of_verdict (Analysis.check ~mu:mu2 t2));
  Store.close s;
  (* Flip a byte inside the first record: the checksum must reject it
     AND everything after it (append-only journals have no frame
     resync). *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  let b = Bytes.of_string full in
  Bytes.set b (header_end + 3) 'Z';
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
  let s = Store.open_ path in
  Alcotest.(check int) "nothing trusted past corruption" 0 (Store.stats s).Store.loaded;
  Alcotest.(check bool) "bytes dropped" true ((Store.stats s).Store.dropped_bytes > 0);
  Store.close s;
  Sys.remove path

let test_store_foreign_file () =
  let path = fresh_path ".store" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a journal\n");
  Alcotest.(check bool) "refuses foreign file" true
    (try
       ignore (Store.open_ path);
       false
     with Failure _ -> true);
  Sys.remove path

(* ----------------------------- admission ---------------------------- *)

let test_admission_shedding () =
  let q = Admission.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Admission.try_push q 1);
  Alcotest.(check bool) "push 2" true (Admission.try_push q 2);
  Alcotest.(check bool) "push 3 shed" false (Admission.try_push q 3);
  Alcotest.(check int) "depth" 2 (Admission.length q);
  Admission.close q;
  Alcotest.(check bool) "push after close shed" false (Admission.try_push q 4);
  (* Queued items still drain after close... *)
  Alcotest.(check (option (list int))) "drain" (Some [ 1; 2 ])
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true));
  (* ...then consumers get the end-of-queue signal. *)
  Alcotest.(check (option (list int))) "closed" None
    (Admission.pop_batch q ~max:8 ~compatible:(fun _ _ -> true))

let test_admission_batching () =
  let q = Admission.create ~capacity:16 in
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 2; 4; 6; 7; 8 ];
  let even a b = a mod 2 = b mod 2 in
  (* The batch is the compatible prefix, cut at the first mismatch. *)
  Alcotest.(check (option (list int))) "even prefix" (Some [ 2; 4; 6 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  Alcotest.(check (option (list int))) "odd singleton" (Some [ 7 ])
    (Admission.pop_batch q ~max:8 ~compatible:even);
  (* [max] bounds the batch even when everything is compatible. *)
  List.iter (fun x -> ignore (Admission.try_push q x)) [ 10; 12 ];
  Alcotest.(check (option (list int))) "max cut" (Some [ 8; 10 ])
    (Admission.pop_batch q ~max:2 ~compatible:even)

(* ----------------------------- protocol ----------------------------- *)

let test_protocol_roundtrip () =
  let check_roundtrip name json expect_op =
    match Protocol.request_of_line (Json.to_string json) with
    | Ok env -> Alcotest.(check string) name expect_op (Protocol.op_name env.Protocol.req)
    | Error e -> Alcotest.failf "%s rejected: %s" name e
  in
  check_roundtrip "analyze" (Protocol.analyze ~id:(Json.Int 1) ~mu:mu1 t1) "analyze";
  check_roundtrip "analyze w/ deadline"
    (Protocol.analyze ~deadline_ms:50 ~mu:mu1 t1)
    "analyze";
  check_roundtrip "search"
    (Protocol.search ~algorithm:"matmul" ~mu:3 ~pareto:true ~array_dim:1 ())
    "search";
  check_roundtrip "simulate"
    (Protocol.simulate ~algorithm:"matmul" ~mu:2 ~pi:(Intvec.of_ints [ 1; 1; 1 ]) ())
    "simulate";
  check_roundtrip "replay"
    (Protocol.replay (Check.Instance.make ~mu:mu1 t1))
    "replay";
  check_roundtrip "ping" (Protocol.ping ~id:(Json.Str "x") ()) "ping";
  check_roundtrip "stats" (Protocol.stats_request ()) "stats";
  check_roundtrip "drain" (Protocol.drain ()) "drain"

let test_protocol_rejects () =
  let rejected line =
    match Protocol.request_of_line line with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (rejected "nope");
  Alcotest.(check bool) "not an object" true (rejected "[1,2]");
  Alcotest.(check bool) "missing op" true (rejected {|{"id":1}|});
  Alcotest.(check bool) "unknown op" true (rejected {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "mu arity mismatch" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,4]}|});
  Alcotest.(check bool) "mu below 1" true
    (rejected {|{"op":"analyze","t":[[1,1,-1]],"mu":[4,0,4]}|});
  Alcotest.(check bool) "ragged matrix" true
    (rejected {|{"op":"analyze","t":[[1,1],[1]],"mu":[4,4]}|})

let test_protocol_id_echo () =
  match Protocol.request_of_line {|{"op":"ping","id":{"seq":7}}|} with
  | Ok env ->
    let reply = Protocol.ok_reply ~id:env.Protocol.id ~op:"ping" [] in
    Alcotest.(check string) "structured id echoed"
      {|{"id":{"seq":7},"ok":true,"op":"ping"}|}
      (Json.to_string reply);
    Alcotest.(check bool) "reply_ok" true (Protocol.reply_ok reply)
  | Error e -> Alcotest.failf "ping with structured id rejected: %s" e

(* ----------------------------- live server -------------------------- *)

let boot ?store_path () =
  let sock = fresh_path ".sock" in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock sock)) with
      jobs = Some 2;
      store_path;
    }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  (d, th, sock)

let shutdown (d, th, _sock) =
  Daemon.initiate_drain d;
  Thread.join th

let direct_verdict (inst : Check.Instance.t) =
  Json.to_string
    (Protocol.json_of_wire
       (Protocol.wire_of_verdict
          (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)))

let analyze_via conn (inst : Check.Instance.t) =
  let reply =
    Client.request conn
      (Protocol.analyze ~id:(Json.Int 0) ~mu:inst.Check.Instance.mu
         inst.Check.Instance.tmat)
  in
  Alcotest.(check bool) "reply ok" true (Protocol.reply_ok reply);
  let verdict =
    match Json.member "verdict" reply with
    | Some v -> Json.to_string v
    | None -> Alcotest.fail "analyze reply without verdict"
  in
  let status =
    match Json.member "store" reply with
    | Some (Json.Str s) -> s
    | _ -> Alcotest.fail "analyze reply without store status"
  in
  (verdict, status)

let test_live_corpus_differential () =
  let corpus = Check.Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus present" true (corpus <> []);
  let store_path = fresh_path ".store" in
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  (* Cold pass: every verdict is computed, persisted, and must render
     byte-identically to a direct local Analysis.check. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("cold " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("cold status " ^ name) "miss" status)
    corpus;
  (* Warm pass on the same server: served from the store, same bytes. *)
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("warm " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("warm status " ^ name) "hit" status)
    corpus;
  Client.close conn;
  shutdown server;
  (* Restart on the same journal: the store survives the round trip
     and the warm hits keep their bytes. *)
  let server = boot ~store_path () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let verdict, status = analyze_via conn inst in
      Alcotest.(check string) ("post-restart " ^ name) (direct_verdict inst) verdict;
      Alcotest.(check string) ("post-restart status " ^ name) "hit" status)
    corpus;
  let stats = Client.request conn (Protocol.stats_request ~id:(Json.Int 1) ()) in
  (match Json.member "store" stats with
  | Some store -> (
    match (Json.member "loaded" store, Json.member "hits" store) with
    | Some (Json.Int loaded), Some (Json.Int hits) ->
      Alcotest.(check bool) "journal replayed at boot" true (loaded > 0);
      Alcotest.(check bool) "post-restart hit rate > 0" true (hits > 0)
    | _ -> Alcotest.fail "stats reply without store.loaded/store.hits")
  | None -> Alcotest.fail "stats reply without store");
  Client.close conn;
  shutdown server;
  Sys.remove store_path

let test_live_replay_op () =
  let corpus = Check.Corpus.load_dir "corpus" in
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  List.iter
    (fun (name, inst) ->
      let reply = Client.request conn (Protocol.replay ~id:(Json.Str name) inst) in
      Alcotest.(check bool) (name ^ " ok") true (Protocol.reply_ok reply);
      match Json.member "agree" reply with
      | Some (Json.Bool agree) ->
        Alcotest.(check bool) (name ^ " fast path agrees with oracle") true agree
      | Some Json.Null -> () (* index set too large for the oracle *)
      | _ -> Alcotest.fail "replay reply without agree")
    corpus;
  Client.close conn;
  shutdown server

let test_live_bad_requests () =
  let server = boot () in
  let _, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Json.Str "not an object") in
  Alcotest.(check bool) "rejected" false (Protocol.reply_ok reply);
  Alcotest.(check (option string)) "bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  let reply =
    Client.request conn
      (Json.Obj [ ("op", Json.Str "search"); ("algorithm", Json.Str "nope"); ("mu", Json.Int 2) ])
  in
  Alcotest.(check (option string)) "unknown algorithm is bad_request" (Some "bad_request")
    (Protocol.error_code reply);
  (* Unknown-algorithm failures must not poison the connection. *)
  let reply = Client.request conn (Protocol.ping ~id:(Json.Int 9) ()) in
  Alcotest.(check bool) "still serving" true (Protocol.reply_ok reply);
  Client.close conn;
  shutdown server

let test_live_drain_rejects () =
  let server = boot () in
  let d, _, sock = server in
  let conn = Client.connect (`Unix sock) in
  let reply = Client.request conn (Protocol.drain ~id:(Json.Int 1) ()) in
  Alcotest.(check bool) "drain acknowledged" true (Protocol.reply_ok reply);
  (* After the ack the drain runs concurrently, so the follow-up is
     refused one of two ways: an explicit "draining" reply if the
     connection thread is still reading, or a closed socket if the
     shutdown won the race.  Only a successful verdict would be a
     bug. *)
  (match Client.request conn (Protocol.analyze ~id:(Json.Int 2) ~mu:mu1 t1) with
  | reply ->
    Alcotest.(check (option string)) "queued work refused while draining"
      (Some "draining") (Protocol.error_code reply)
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  | exception Failure _ -> ());
  ignore (Daemon.stats_fields d);
  Client.close conn;
  shutdown server

let test_live_load_verified () =
  (* A small version of the CI smoke run: concurrent verified load,
     zero disagreements, zero unexplained sheds. *)
  let server = boot ~store_path:(fresh_path ".store") () in
  let _, _, sock = server in
  let r =
    Client.load (`Unix sock)
      { Client.default_load with requests = 200; concurrency = 4; distinct = 16 }
  in
  Alcotest.(check int) "no disagreements" 0 r.Client.disagreements;
  Alcotest.(check int) "no transport errors" 0 r.Client.errors;
  Alcotest.(check int) "no sheds at default capacity" 0 r.Client.shed;
  Alcotest.(check int) "all replies ok" 200 r.Client.ok;
  shutdown server

let suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "store crash recovery" `Quick test_store_crash_recovery;
    Alcotest.test_case "store corrupt record" `Quick test_store_corrupt_record;
    Alcotest.test_case "store foreign file" `Quick test_store_foreign_file;
    Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
    Alcotest.test_case "admission batching" `Quick test_admission_batching;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "protocol id echo" `Quick test_protocol_id_echo;
    Alcotest.test_case "live corpus differential" `Quick test_live_corpus_differential;
    Alcotest.test_case "live replay op" `Quick test_live_replay_op;
    Alcotest.test_case "live bad requests" `Quick test_live_bad_requests;
    Alcotest.test_case "live drain rejects" `Quick test_live_drain_rejects;
    Alcotest.test_case "live verified load" `Quick test_live_load_verified;
  ]
