(* Tests for the observability layer: trace-span collection and
   nesting (including across Engine.Pool domains), the metrics
   registry, the JSON parser that bench diff relies on, the exporters,
   and the Benchstat regression detector. *)

(* Every trace test owns the global collector; run them with a fresh
   session and leave tracing off afterwards so unrelated tests are not
   recorded. *)
let with_tracing f =
  Obs.Trace.enable ();
  Fun.protect ~finally:(fun () -> Obs.Trace.disable ()) f

let span_names spans = List.map (fun s -> s.Obs.Trace.name) spans

(* ------------------------------ spans ------------------------------ *)

let test_spans_disabled_noop () =
  Obs.Trace.disable ();
  Obs.Trace.clear ();
  Alcotest.(check int) "thunk result" 7 (Obs.Trace.with_span "off" (fun () -> 7));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Trace.spans ()));
  Alcotest.(check (option int)) "no current span" None (Obs.Trace.current ())

let test_span_nesting () =
  with_tracing (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "mid" (fun () ->
              Obs.Trace.with_span "inner" (fun () -> ()));
          Obs.Trace.with_span "sibling" (fun () -> ())));
  let spans = Obs.Trace.spans () in
  Alcotest.(check (list string))
    "completion order" [ "inner"; "mid"; "sibling"; "outer" ] (span_names spans);
  let by_name n = List.find (fun s -> s.Obs.Trace.name = n) spans in
  let outer = by_name "outer" in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.Trace.parent;
  Alcotest.(check (option int))
    "mid under outer"
    (Some outer.Obs.Trace.id)
    (by_name "mid").Obs.Trace.parent;
  Alcotest.(check (option int))
    "inner under mid"
    (Some (by_name "mid").Obs.Trace.id)
    (by_name "inner").Obs.Trace.parent;
  Alcotest.(check (option int))
    "sibling under outer"
    (Some outer.Obs.Trace.id)
    (by_name "sibling").Obs.Trace.parent

let test_span_exception_closes () =
  with_tracing (fun () ->
      (try Obs.Trace.with_span "raiser" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* The raising span must have been popped: the next span is a
         root, not a child of "raiser". *)
      Obs.Trace.with_span "after" (fun () -> ()));
  let spans = Obs.Trace.spans () in
  Alcotest.(check (list string)) "both recorded" [ "raiser"; "after" ] (span_names spans);
  List.iter
    (fun s -> Alcotest.(check (option int)) (s.Obs.Trace.name ^ " is a root") None s.Obs.Trace.parent)
    spans

(* Orphan check: every non-root parent id must itself be a recorded
   span — a trace with orphans renders as disconnected fragments. *)
let check_no_orphans spans =
  let ids = List.map (fun s -> s.Obs.Trace.id) spans in
  List.iter
    (fun s ->
      match s.Obs.Trace.parent with
      | None -> ()
      | Some p ->
        Alcotest.(check bool)
          (Printf.sprintf "parent %d of %s recorded" p s.Obs.Trace.name)
          true (List.mem p ids))
    spans

let pool_span_run jobs =
  Obs.Metrics.reset ();
  Engine.Cache.clear ();
  let pool = Engine.Pool.create ~jobs () in
  with_tracing (fun () ->
      Obs.Trace.with_span "root" (fun () ->
          ignore
            (Engine.Pool.map pool
               (fun i -> Obs.Trace.with_span "work" (fun () -> i * i))
               (List.init 12 Fun.id))));
  Obs.Trace.spans ()

let test_pool_span_parenting () =
  List.iter
    (fun jobs ->
      let spans = pool_span_run jobs in
      check_no_orphans spans;
      let root = List.find (fun s -> s.Obs.Trace.name = "root") spans in
      let work = List.filter (fun s -> s.Obs.Trace.name = "work") spans in
      Alcotest.(check int) (Printf.sprintf "work spans, jobs=%d" jobs) 12 (List.length work);
      List.iter
        (fun s ->
          Alcotest.(check (option int))
            (Printf.sprintf "worker span under root, jobs=%d" jobs)
            (Some root.Obs.Trace.id) s.Obs.Trace.parent)
        work)
    [ 1; 4 ]

(* The deterministic observables must not depend on the domain count:
   same spans recorded, same per-name aggregate counts, and the same
   value for every counter bumped outside the cache's racy
   compute-outside-the-lock window. *)
let test_metrics_jobs_invariant () =
  let observe jobs =
    Obs.Metrics.reset ();
    Engine.Cache.clear ();
    Obs.Warn.reset ();
    let pool = Engine.Pool.create ~jobs () in
    let alg = Matmul.algorithm ~mu:4 in
    with_tracing (fun () ->
        ignore (Search.all_optimal_schedules ~pool alg ~s:Matmul.paper_s));
    let agg =
      List.map (fun (n, c, _) -> (n, c)) (Obs.Trace.aggregate (Obs.Trace.spans ()))
    in
    let snap = Obs.Metrics.snapshot () in
    (agg, Obs.Metrics.counter_value snap "analysis.queries")
  in
  let agg1, queries1 = observe 1 in
  let agg4, queries4 = observe 4 in
  Alcotest.(check (list (pair string int))) "same span aggregate" agg1 agg4;
  Alcotest.(check int) "same query count" queries1 queries4;
  Alcotest.(check bool) "screens happened" true (List.mem_assoc "search.screen" agg1)

let test_warn_once () =
  Obs.Warn.reset ();
  Alcotest.(check bool) "first time prints" true (Obs.Warn.once "obs-test-key" "w");
  Alcotest.(check bool) "second time silent" false (Obs.Warn.once "obs-test-key" "w");
  Obs.Warn.reset ();
  Alcotest.(check bool) "prints again after reset" true (Obs.Warn.once "obs-test-key" "w")

(* ----------------------------- metrics ----------------------------- *)

let test_metrics_registry () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "obs-test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "counter value" 5 (Obs.Metrics.value c);
  Alcotest.(check bool) "same name, same instrument" true
    (Obs.Metrics.counter "obs-test.counter" == c);
  let g = Obs.Metrics.gauge "obs-test.gauge" in
  Obs.Metrics.set_gauge_max g 3.;
  Obs.Metrics.set_gauge_max g 1.;
  Alcotest.(check (float 0.)) "gauge keeps max" 3. (Obs.Metrics.gauge_value g);
  let h = Obs.Metrics.histogram "obs-test.hist" in
  Obs.Metrics.observe h 2.;
  Obs.Metrics.observe h 6.;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "snapshot counter" 5 (Obs.Metrics.counter_value snap "obs-test.counter");
  (match List.assoc_opt "obs-test.hist" snap.Obs.Metrics.histograms with
  | Some hs ->
    Alcotest.(check int) "hist count" 2 hs.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "hist sum" 8. hs.Obs.Metrics.sum;
    Alcotest.(check (float 1e-9)) "hist min" 2. hs.Obs.Metrics.min_v;
    Alcotest.(check (float 1e-9)) "hist max" 6. hs.Obs.Metrics.max_v
  | None -> Alcotest.fail "histogram missing from snapshot");
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c)

(* --------------------------- JSON parser --------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("str", Json.Str "a \"quoted\" line\nwith unicode \xc3\xa9");
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("arr", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Obj [] ]);
        ("nested", Json.Obj [ ("empty", Json.Arr []) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_malformed () =
  List.iter
    (fun input ->
      match Json.parse input with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" input)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_member () =
  match Json.parse "{\"a\": 1, \"b\": {\"c\": [2]}}" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    Alcotest.(check bool) "top-level member" true (Json.member "a" doc = Some (Json.Int 1));
    Alcotest.(check bool) "absent member" true (Json.member "z" doc = None);
    Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 3) = None)

(* ---------------------------- exporters ---------------------------- *)

let test_chrome_export_shape () =
  with_tracing (fun () ->
      Obs.Trace.with_span "outer" (fun () -> Obs.Trace.with_span "inner" (fun () -> ())));
  let doc = Obs.Export.chrome_trace (Obs.Trace.spans ()) in
  (* The exporter's own output must satisfy the repo's JSON parser. *)
  (match Json.parse (Json.to_string doc) with
  | Ok reparsed -> Alcotest.(check bool) "chrome trace round-trips" true (reparsed = doc)
  | Error e -> Alcotest.fail ("chrome trace unparsable: " ^ e));
  match Json.member "traceEvents" doc with
  | Some (Json.Arr events) ->
    Alcotest.(check int) "one event per span" 2 (List.length events);
    List.iter
      (fun ev ->
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (key ^ " present") true
              (Json.member key ev <> None))
          [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ])
      events
  | _ -> Alcotest.fail "traceEvents missing"

let test_span_tree_export () =
  with_tracing (fun () ->
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "a" (fun () -> ());
          Obs.Trace.with_span "b" (fun () -> ())));
  match Obs.Export.span_tree (Obs.Trace.spans ()) with
  | Json.Arr [ root ] ->
    Alcotest.(check bool) "root name" true (Json.member "name" root = Some (Json.Str "outer"));
    (match Json.member "children" root with
    | Some (Json.Arr kids) ->
      Alcotest.(check (list string))
        "children in start order" [ "a"; "b" ]
        (List.map
           (fun k ->
             match Json.member "name" k with Some (Json.Str n) -> n | _ -> "?")
           kids)
    | _ -> Alcotest.fail "children missing")
  | _ -> Alcotest.fail "expected exactly one root"

(* ---------------------------- benchstat ---------------------------- *)

(* A golden pair modeled on two BENCH_<rev>.json files: one timing
   regressed beyond the threshold, one improved, one within noise, one
   bench renamed. *)
let bench_doc ~pareto_ms ~lll_ns ~hnf_ns ~extra_name ~extra_ns =
  Json.Obj
    [
      ("schema_version", Json.Int 2);
      ("rev", Json.Str "deadbeef");
      ( "engine",
        Json.Obj
          [
            ("jobs", Json.Int 4);
            ("pareto", Json.Obj [ ("warm_n_ms", Json.Float pareto_ms) ]);
          ] );
      ( "micro",
        Json.Arr
          [
            Json.Obj
              [ ("name", Json.Str "lll/reduce-3x4"); ("ns_per_run", Json.Float lll_ns) ];
            Json.Obj
              [ ("name", Json.Str "hnf/min-abs-3x5"); ("ns_per_run", Json.Float hnf_ns) ];
            Json.Obj
              [ ("name", Json.Str extra_name); ("ns_per_run", Json.Float extra_ns) ];
          ] );
    ]

let test_benchstat_regressions () =
  let baseline =
    bench_doc ~pareto_ms:10. ~lll_ns:100. ~hnf_ns:50. ~extra_name:"old-bench" ~extra_ns:1.
  in
  let current =
    bench_doc ~pareto_ms:25. ~lll_ns:40. ~hnf_ns:51. ~extra_name:"new-bench" ~extra_ns:1.
  in
  let r = Benchstat.compare_runs ~threshold_pct:20. ~baseline ~current () in
  (match r.Benchstat.regressions with
  | [ c ] ->
    Alcotest.(check string) "regressed path" "engine.pareto.warm_n_ms" c.Benchstat.path;
    Alcotest.(check (float 1e-6)) "delta pct" 150. c.Benchstat.delta_pct
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length cs)));
  (match r.Benchstat.improvements with
  | [ c ] -> Alcotest.(check string) "improved path" "micro.{lll/reduce-3x4}.ns_per_run" c.Benchstat.path
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 improvement, got %d" (List.length cs)));
  Alcotest.(check (list string)) "renamed bench reported missing"
    [ "micro.{old-bench}.ns_per_run" ] r.Benchstat.missing;
  Alcotest.(check (list string)) "new bench reported added"
    [ "micro.{new-bench}.ns_per_run" ] r.Benchstat.added;
  (* Non-timing leaves (jobs, schema_version) never participate. *)
  let same = Benchstat.compare_runs ~threshold_pct:20. ~baseline ~current:baseline () in
  Alcotest.(check int) "identical runs: no regressions" 0 (List.length same.Benchstat.regressions);
  Alcotest.(check int) "identical runs: no improvements" 0
    (List.length same.Benchstat.improvements)

let test_benchstat_threshold_boundary () =
  let baseline = bench_doc ~pareto_ms:10. ~lll_ns:100. ~hnf_ns:50. ~extra_name:"x" ~extra_ns:1. in
  let current = bench_doc ~pareto_ms:12. ~lll_ns:100. ~hnf_ns:50. ~extra_name:"x" ~extra_ns:1. in
  (* +20% exactly at a 20% threshold is noise, not a regression. *)
  let at = Benchstat.compare_runs ~threshold_pct:20. ~baseline ~current () in
  Alcotest.(check int) "at threshold" 0 (List.length at.Benchstat.regressions);
  let below = Benchstat.compare_runs ~threshold_pct:19. ~baseline ~current () in
  Alcotest.(check int) "above threshold" 1 (List.length below.Benchstat.regressions)

let suite =
  [
    Alcotest.test_case "disabled tracing is a no-op" `Quick test_spans_disabled_noop;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span closed on exception" `Quick test_span_exception_closes;
    Alcotest.test_case "pool re-parents worker spans" `Quick test_pool_span_parenting;
    Alcotest.test_case "metrics invariant across jobs" `Quick test_metrics_jobs_invariant;
    Alcotest.test_case "warn once" `Quick test_warn_once;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick test_json_malformed;
    Alcotest.test_case "json member" `Quick test_json_member;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "span tree export" `Quick test_span_tree_export;
    Alcotest.test_case "benchstat golden diff" `Quick test_benchstat_regressions;
    Alcotest.test_case "benchstat threshold boundary" `Quick test_benchstat_threshold_boundary;
  ]
