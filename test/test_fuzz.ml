(* End-to-end fuzzing: generate random programs and mapping instances
   with the shared generators of [Check.Gen], push them through the
   whole pipeline (parse -> dependence extraction -> joint time/space
   optimization -> cycle-accurate simulation) and require a clean run
   whenever a mapping exists.

   This is the cross-cutting invariant of the repository: anything the
   front end accepts and the optimizers map must simulate without
   computational conflicts, causality violations or value errors.  The
   mapping-level differential property (every conflict-freedom fast
   path against the brute-force oracle, with shrinking) lives here too;
   deeper differential coverage is in [test_check.ml]. *)

(* What joint optimization guarantees: conflict-freedom, causality and
   correct dataflow.  It does NOT promise link-collision-freedom — the
   minimal-hop routing is chosen after the fact and a fuzzed program
   can legitimately collide on a link — so collisions are instead
   cross-checked against the analytical predictor ([Linkcheck] must
   agree with the simulator on whether any occur). *)
let clean_modulo_links alg tm (rep : _ Exec.report) =
  rep.Exec.conflicts = []
  && rep.Exec.causality_violations = []
  && Exec.values_agree rep
  &&
  match rep.Exec.routing with
  | None -> rep.Exec.collisions = []
  | Some routing ->
    (rep.Exec.collisions <> []) = (Linkcheck.predict alg tm routing <> [])

let prop_pipeline_clean =
  QCheck.Test.make ~name:"parse -> optimize -> simulate is always clean" ~count:60
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Check.Gen.source_program rng in
      match Loopnest.parse_result src with
      | Error _ -> true (* the generator can produce degenerate programs *)
      | Ok a -> (
        let alg = a.Loopnest.algorithm in
        match Space_opt.optimize_joint ~max_time_objective:60 alg ~k:2 with
        | None -> true
        | Some (pi, so) ->
          let tm = Tmap.make ~s:so.Space_opt.s ~pi in
          let rep = Exec.run alg Dataflow.semantics tm in
          clean_modulo_links alg tm rep
          && rep.Exec.num_processors = so.Space_opt.processors))

let prop_optimizers_agree_on_fuzzed =
  QCheck.Test.make ~name:"Procedure 5.1 (exact) = (theorem) on fuzzed programs" ~count:40
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Check.Gen.source_program rng in
      match Loopnest.parse_result src with
      | Error _ -> true
      | Ok a ->
        let alg = a.Loopnest.algorithm in
        let n = Algorithm.dim alg in
        (* Project out the last dimension as a simple space mapping. *)
        let s = Intmat.make 1 n (fun _ j -> if j = n - 1 then Zint.one else Zint.zero) in
        let time r = Option.map (fun x -> x.Procedure51.total_time) r in
        time (Procedure51.optimize ~check:Procedure51.Exact ~max_objective:40 alg ~s)
        = time (Procedure51.optimize ~check:Procedure51.Theorem ~max_objective:40 alg ~s))

let prop_multi_statement_pipeline_clean =
  QCheck.Test.make ~name:"multi-statement fuzz: aligned programs simulate cleanly" ~count:40
    QCheck.int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Check.Gen.source_two_statement rng in
      match Loopnest.parse_result src with
      | Error _ -> true (* degenerate programs are allowed to be rejected *)
      | Ok a -> (
        let alg = a.Loopnest.algorithm in
        (* Alignment must produce a schedulable dependence set. *)
        match Procedure51.minimal_schedule alg with
        | None -> false (* the alignment search promised schedulability *)
        | Some _ -> (
          match Space_opt.optimize_joint ~max_time_objective:60 alg ~k:2 with
          | None -> true
          | Some (pi, so) ->
            let tm = Tmap.make ~s:so.Space_opt.s ~pi in
            clean_modulo_links alg tm (Exec.run alg Dataflow.semantics tm))))

(* The mapping-level differential property: every fast path against the
   brute-force (processor, time) collision oracle.  On failure the
   instance is shrunk before being reported, so the counterexample in
   the log is already minimal. *)
let prop_fastpaths_agree_with_oracle =
  QCheck.Test.make ~name:"differential: fast paths = brute-force oracle (shrunk on failure)"
    ~count:80 QCheck.small_nat (fun i ->
      let inst = Check.Gen.ith ~seed:0xF422 ~size:3 i in
      match Check.Diff.check_instance inst with
      | [] -> true
      | ds ->
        let f = Check.Diff.shrink_failure ~index:i inst ds in
        QCheck.Test.fail_reportf "disagreement:@.%s@.shrunk to:@.%s@.%s"
          (Check.Instance.to_string inst)
          (Check.Instance.to_string f.Check.Diff.shrunk)
          (String.concat "\n"
             (List.map
                (fun (d : Check.Diff.disagreement) ->
                  Check.Diff.path_name d.Check.Diff.path ^ ": " ^ d.Check.Diff.detail)
                ds)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pipeline_clean;
      prop_optimizers_agree_on_fuzzed;
      prop_multi_statement_pipeline_clean;
      prop_fastpaths_agree_with_oracle;
    ]
