(* Tests for the engine subsystem: worker pool determinism, the memo
   cache, budgets, the Obs metrics the engine emits, and the parallel
   search agreeing with the sequential reference. *)

let mu3 = [| 4; 4; 4 |]

let vec_lists = Alcotest.(list (list int))
let to_ints_l vs = List.map Intvec.to_ints vs

(* ------------------------------ pool ------------------------------- *)

let test_pool_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let pool = Engine.Pool.create ~jobs () in
      Alcotest.(check (list int))
        (Printf.sprintf "map order, jobs=%d" jobs)
        (List.map (fun x -> (x * 7) mod 13) xs)
        (Engine.Pool.map pool (fun x -> (x * 7) mod 13) xs))
    [ 1; 2; 4 ]

let test_pool_edge_cases () =
  let pool = Engine.Pool.create ~jobs:4 () in
  Alcotest.(check (list int)) "empty" [] (Engine.Pool.map pool succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Engine.Pool.map pool succ [ 1 ]);
  Alcotest.(check int) "jobs clamped to 1" 1 (Engine.Pool.jobs (Engine.Pool.create ~jobs:0 ()))

let test_pool_exception () =
  let pool = Engine.Pool.create ~jobs:3 () in
  Alcotest.(check bool) "worker exception propagates" true
    (try
       ignore (Engine.Pool.map pool (fun x -> if x = 5 then failwith "boom" else x) [ 1; 5; 9 ]);
       false
     with Failure _ -> true)

(* ------------------------- search = reference ---------------------- *)

let test_search_schedules_agree () =
  let alg = Matmul.algorithm ~mu:4 in
  let reference = to_ints_l (Enumerate.all_optimal_schedules alg ~s:Matmul.paper_s) in
  List.iter
    (fun jobs ->
      let pool = Engine.Pool.create ~jobs () in
      let got = to_ints_l (Search.all_optimal_schedules ~pool alg ~s:Matmul.paper_s) in
      Alcotest.check vec_lists (Printf.sprintf "matmul schedules, jobs=%d" jobs) reference got)
    [ 1; 4 ];
  let tc = Transitive_closure.algorithm ~mu:4 in
  let pool = Engine.Pool.create ~jobs:4 () in
  Alcotest.check vec_lists "tc schedules"
    (to_ints_l (Enumerate.all_optimal_schedules tc ~s:Transitive_closure.paper_s))
    (to_ints_l (Search.all_optimal_schedules ~pool tc ~s:Transitive_closure.paper_s))

let test_search_best_by_buffers_agree () =
  let alg = Matmul.algorithm ~mu:4 in
  let pool = Engine.Pool.create ~jobs:4 () in
  match
    (Enumerate.best_by_buffers alg ~s:Matmul.paper_s, Search.best_by_buffers ~pool alg ~s:Matmul.paper_s)
  with
  | Some (pi_ref, rt_ref), Some (pi, rt) ->
    Alcotest.(check (list int)) "same pi" (Intvec.to_ints pi_ref) (Intvec.to_ints pi);
    Alcotest.(check int) "same registers"
      (Array.fold_left ( + ) 0 rt_ref.Tmap.buffers)
      (Array.fold_left ( + ) 0 rt.Tmap.buffers)
  | _ -> Alcotest.fail "expected a buffer-minimal schedule from both"

let point_key p =
  ( p.Enumerate.total_time,
    p.Enumerate.processors,
    Intvec.to_ints p.Enumerate.pi,
    Intmat.to_ints p.Enumerate.s )

let test_search_pareto_agree () =
  let alg = Matmul.algorithm ~mu:3 in
  let reference = List.map point_key (Enumerate.pareto_front alg ~k:2) in
  List.iter
    (fun jobs ->
      let pool = Engine.Pool.create ~jobs () in
      let got = List.map point_key (Search.pareto_front ~pool alg ~k:2) in
      Alcotest.(check bool) (Printf.sprintf "pareto front, jobs=%d" jobs) true (reference = got))
    [ 1; 4 ]

let test_search_empty_under_bound () =
  let alg = Matmul.algorithm ~mu:4 in
  let pool = Engine.Pool.create ~jobs:2 () in
  Alcotest.check vec_lists "no schedule under tiny bound" []
    (to_ints_l (Search.all_optimal_schedules ~pool ~max_objective:3 alg ~s:Matmul.paper_s))

(* ------------------------------ cache ------------------------------ *)

let test_cache_hits () =
  Engine.Cache.clear ();
  let t = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let v1 = Analysis.check ~mu:mu3 t in
  let before = Engine.Cache.stats () in
  let v2 = Analysis.check ~mu:mu3 t in
  let after = Engine.Cache.stats () in
  Alcotest.(check bool) "same verdict" true
    (v1.Analysis.conflict_free = v2.Analysis.conflict_free
    && v1.Analysis.decided_by = v2.Analysis.decided_by);
  Alcotest.(check bool) "repeat query hits the cache" true
    (after.Engine.Cache.hits > before.Engine.Cache.hits);
  Alcotest.(check bool) "entries retained" true (after.Engine.Cache.entries > 0)

let test_cache_clear () =
  let t = Intmat.of_ints [ [ 1; 0; 0 ]; [ 0; 1; 5 ] ] in
  ignore (Analysis.check ~mu:mu3 t);
  Engine.Cache.clear ();
  let s = Engine.Cache.stats () in
  Alcotest.(check int) "no entries" 0 s.Engine.Cache.entries;
  Alcotest.(check int) "no hits" 0 s.Engine.Cache.hits;
  Alcotest.(check int) "no misses" 0 s.Engine.Cache.misses

let test_cache_hnf_consistent () =
  let t = Intmat.of_ints [ [ 2; 4; 4 ]; [ -6; 6; 12 ]; [ 10; 4; 16 ] ] in
  let a = Engine.Cache.hnf t in
  let b = Engine.Cache.hnf t in
  Alcotest.(check bool) "memoized result verifies" true (Hnf.verify t a);
  Alcotest.(check bool) "physically shared" true (a == b)

(* --------------------------- analysis ------------------------------ *)

let test_analysis_agrees_with_reference () =
  (* Sweep many (S; pi) stacks and demand verdict agreement with the
     sequential trio it subsumes: Theorems.decide + rank check. *)
  let s = Matmul.paper_s in
  let checked = ref 0 in
  for a = 1 to 4 do
    for b = 1 to 4 do
      for c = -2 to 4 do
        if c <> 0 then begin
          let pi = Intvec.of_ints [ a; b; c ] in
          let t = Intmat.append_row s pi in
          let v = Analysis.check ~mu:mu3 t in
          incr checked;
          Alcotest.(check bool) "full rank agrees" (Intmat.rank t = 2) v.Analysis.full_rank;
          if v.Analysis.full_rank then begin
            Alcotest.(check bool) "verdict agrees with Theorems.decide"
              (fst (Theorems.decide ~mu:mu3 t))
              v.Analysis.conflict_free;
            Alcotest.(check bool) "verdict agrees with the box oracle"
              (Conflict.is_conflict_free ~mu:mu3 t)
              v.Analysis.conflict_free
          end
        end
      done
    done
  done;
  Alcotest.(check int) "swept the whole family" (4 * 4 * 6) !checked

let test_analysis_witness () =
  (* (1,1,1) over the paper's S collides; the verdict must carry a
     feasible kernel witness. *)
  let t = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 1; 1 ]) in
  let v = Analysis.check ~mu:mu3 t in
  Alcotest.(check bool) "conflicted" false v.Analysis.conflict_free;
  match v.Analysis.witness with
  | Some g ->
    (* A conflict witness lies inside the box (Theorem 2.2's
       "infeasible" side) and in ker T. *)
    Alcotest.(check bool) "witness inside the box" false (Conflict.is_feasible ~mu:mu3 g);
    Alcotest.(check bool) "witness nonzero" true (not (Intvec.is_zero g))
  | None -> Alcotest.fail "expected a conflict witness"

let test_analysis_rank_deficient () =
  let t = Intmat.of_ints [ [ 1; 1; -1 ]; [ 2; 2; -2 ] ] in
  let v = Analysis.check ~mu:mu3 t in
  Alcotest.(check bool) "not full rank" false v.Analysis.full_rank

let test_analysis_is_conflict_free_wrapper () =
  let free = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 4; 1 ]) in
  let conflicted = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 1; 1 ]) in
  Alcotest.(check bool) "free" true (Analysis.is_conflict_free ~mu:mu3 free);
  Alcotest.(check bool) "conflicted" false (Analysis.is_conflict_free ~mu:mu3 conflicted)

(* ------------------------------ budget ----------------------------- *)

let test_budget_deadline_degrades () =
  (* A zero deadline is pressed from the start: the verdict must be
     reported as bounded yet still correct on instances the lattice
     oracle decides. *)
  let budget = Engine.Budget.make ~deadline_ms:0 () in
  Alcotest.(check bool) "pressed immediately" true (Engine.Budget.pressed budget);
  let free = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 4; 1 ]) in
  let v = Analysis.check ~budget ~mu:mu3 free in
  Alcotest.(check bool) "bounded" true (v.Analysis.exactness = Analysis.Bounded);
  Alcotest.(check bool) "still conflict-free" true v.Analysis.conflict_free;
  let conflicted = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 1; 1 ]) in
  let v' = Analysis.check ~budget ~mu:mu3 conflicted in
  Alcotest.(check bool) "bounded conflict found" false v'.Analysis.conflict_free;
  Alcotest.(check bool) "lattice path reported" true
    (match v'.Analysis.decided_by with
    | Analysis.Lattice_oracle | Analysis.Lattice_fallback -> true
    | Analysis.Theorem _ -> false)

let test_budget_unlimited_exact () =
  let free = Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 4; 1 ]) in
  let v = Analysis.check ~budget:Engine.Budget.unlimited ~mu:mu3 free in
  Alcotest.(check bool) "exact under unlimited budget" true (v.Analysis.exactness = Analysis.Exact)

let test_budget_oracle_cap () =
  let budget = Engine.Budget.make ~max_oracle_calls:2 () in
  Alcotest.(check bool) "fresh budget not pressed" false (Engine.Budget.pressed budget);
  Engine.Budget.charge_oracle budget;
  Engine.Budget.charge_oracle budget;
  Alcotest.(check int) "charges recorded" 2 (Engine.Budget.oracle_calls budget);
  Alcotest.(check bool) "pressed at the cap" true (Engine.Budget.pressed budget)

let test_budgeted_search_still_correct () =
  (* Degraded oracles must not change the schedule set on instances the
     lattice decides (matmul's family is one). *)
  let alg = Matmul.algorithm ~mu:4 in
  let pool = Engine.Pool.create ~jobs:2 () in
  let budget = Engine.Budget.make ~deadline_ms:0 () in
  Alcotest.check vec_lists "bounded search agrees"
    (to_ints_l (Enumerate.all_optimal_schedules alg ~s:Matmul.paper_s))
    (to_ints_l (Search.all_optimal_schedules ~pool ~budget alg ~s:Matmul.paper_s))

(* --------------------------- observability ------------------------- *)

(* Sum of [cache.<name>.hits] (resp. [.misses]) over every registered
   cache table. *)
let cache_total snap suffix =
  List.fold_left
    (fun acc (name, v) ->
      if
        String.length name > 6
        && String.sub name 0 6 = "cache."
        && String.ends_with ~suffix name
      then acc + v
      else acc)
    0 snap.Obs.Metrics.counters

let test_metrics_counters () =
  Obs.Metrics.reset ();
  Engine.Cache.clear ();
  let alg = Matmul.algorithm ~mu:3 in
  let pool = Engine.Pool.create ~jobs:2 () in
  ignore (Search.all_optimal_schedules ~pool alg ~s:Matmul.paper_s);
  let s = Obs.Metrics.snapshot () in
  let c name = Obs.Metrics.counter_value s name in
  Alcotest.(check bool) "queries counted" true (c "analysis.queries" > 0);
  Alcotest.(check bool) "some decision path counted" true
    (c "analysis.closed_form" + c "analysis.box_oracle" + c "analysis.lattice_oracle" > 0);
  Alcotest.(check bool) "pool width observed" true
    (match List.assoc_opt "pool.max_domains" s.Obs.Metrics.gauges with
    | Some w -> w >= 2.
    | None -> false);
  Alcotest.(check bool) "check latency histogram fed" true
    (match List.assoc_opt "analysis.check_ms" s.Obs.Metrics.histograms with
    | Some h -> h.Obs.Metrics.count >= c "analysis.queries"
    | None -> false);
  (* Counters are monotonic between resets... *)
  ignore (Analysis.check ~mu:mu3 (Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 4; 1 ])));
  let s' = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "monotonic" true
    (Obs.Metrics.counter_value s' "analysis.queries" > c "analysis.queries");
  (* ...and reset zeroes them without unregistering. *)
  Obs.Metrics.reset ();
  let z = Obs.Metrics.snapshot () in
  Alcotest.(check int) "reset queries" 0 (Obs.Metrics.counter_value z "analysis.queries");
  Alcotest.(check int) "reset hits" 0 (cache_total z ".hits");
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "analysis.queries" z.Obs.Metrics.counters)

let test_metrics_cache_hits_observed () =
  Obs.Metrics.reset ();
  Engine.Cache.clear ();
  let alg = Matmul.algorithm ~mu:3 in
  let pool = Engine.Pool.create ~jobs:1 () in
  ignore (Search.all_optimal_schedules ~pool alg ~s:Matmul.paper_s);
  ignore (Search.all_optimal_schedules ~pool alg ~s:Matmul.paper_s);
  let s = Obs.Metrics.snapshot () in
  let hits = cache_total s ".hits" and misses = cache_total s ".misses" in
  Alcotest.(check bool) "warm pass hits" true (hits > 0);
  (* The Obs counters must agree with the cache's own accounting. *)
  let stats = Engine.Cache.stats () in
  Alcotest.(check int) "hits agree with Cache.stats" stats.Engine.Cache.hits hits;
  Alcotest.(check int) "misses agree with Cache.stats" stats.Engine.Cache.misses misses

let suite =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_order;
    Alcotest.test_case "pool edge cases" `Quick test_pool_edge_cases;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "parallel schedules = sequential" `Quick test_search_schedules_agree;
    Alcotest.test_case "parallel best-by-buffers = sequential" `Quick
      test_search_best_by_buffers_agree;
    Alcotest.test_case "parallel pareto = sequential" `Slow test_search_pareto_agree;
    Alcotest.test_case "search empty under bound" `Quick test_search_empty_under_bound;
    Alcotest.test_case "cache hits" `Quick test_cache_hits;
    Alcotest.test_case "cache clear" `Quick test_cache_clear;
    Alcotest.test_case "cache hnf consistent" `Quick test_cache_hnf_consistent;
    Alcotest.test_case "analysis agrees with reference" `Quick test_analysis_agrees_with_reference;
    Alcotest.test_case "analysis witness" `Quick test_analysis_witness;
    Alcotest.test_case "analysis rank deficient" `Quick test_analysis_rank_deficient;
    Alcotest.test_case "analysis boolean wrapper" `Quick test_analysis_is_conflict_free_wrapper;
    Alcotest.test_case "budget deadline degrades" `Quick test_budget_deadline_degrades;
    Alcotest.test_case "budget unlimited exact" `Quick test_budget_unlimited_exact;
    Alcotest.test_case "budget oracle cap" `Quick test_budget_oracle_cap;
    Alcotest.test_case "budgeted search correct" `Quick test_budgeted_search_still_correct;
    Alcotest.test_case "engine metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "engine cache metrics" `Quick test_metrics_cache_hits_observed;
  ]
