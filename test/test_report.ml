(* Tests for the text-table renderer and the JSON emitter. *)

let test_render_alignment () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "12345" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: sep :: _ ->
    Alcotest.(check int) "separator width" (String.length header) (String.length sep)
  | _ -> Alcotest.fail "expected at least two lines");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains row" true (List.exists (fun l -> contains l "long-name") lines)

let test_arity_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.(check bool) "rejected" true
    (try Table.add_row t [ "only-one" ]; false with Invalid_argument _ -> true)

let test_int_row () =
  let t = Table.create [ "mu"; "t" ] in
  Table.add_int_row t "4" [ 25 ];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_json_serialization () =
  Alcotest.(check string) "scalars" "[null,true,false,42,-7]"
    (Json.to_string (Json.Arr [ Json.Null; Json.Bool true; Json.Bool false; Json.Int 42; Json.Int (-7) ]));
  Alcotest.(check string) "object" {|{"a":1,"b":[2,3]}|}
    (Json.to_string (Json.Obj [ ("a", Json.Int 1); ("b", Json.ints [ 2; 3 ]) ]));
  Alcotest.(check string) "integer-valued float" "2.0" (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "option none" "null" (Json.to_string (Json.option (fun i -> Json.Int i) None));
  Alcotest.(check string) "option some" "5" (Json.to_string (Json.option (fun i -> Json.Int i) (Some 5)))

let test_json_escaping () =
  Alcotest.(check string) "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.Str {|a"b\c|}));
  Alcotest.(check string) "newline tab" {|"x\ny\tz"|} (Json.to_string (Json.Str "x\ny\tz"));
  Alcotest.(check string) "control char" {|"\u0001"|} (Json.to_string (Json.Str "\x01"))

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      Alcotest.(check (float 0.)) (Printf.sprintf "roundtrip %s" s) f (float_of_string s))
    [ 0.1; 1. /. 3.; 1e-9; 12345.6789; 0.33684210526315789 ]

let test_json_versioned () =
  match Json.versioned ~command:"analyze" [ ("x", Json.Int 1) ] with
  | Json.Obj (("schema_version", Json.Int v) :: ("command", Json.Str c) :: rest) ->
    Alcotest.(check int) "schema version" Json.schema_version v;
    Alcotest.(check string) "command" "analyze" c;
    Alcotest.(check int) "fields follow" 1 (List.length rest)
  | _ -> Alcotest.fail "versioned document must lead with schema_version and command"

let test_parse_depth_cap () =
  (* Within the cap parses; one level past it must fail with the
     structured error, never a stack overflow. *)
  let nested depth = String.make depth '[' ^ String.make depth ']' in
  (match Json.parse ~max_depth:10 (nested 10) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 10 under cap 10 rejected: %s" e);
  (match Json.parse ~max_depth:10 (nested 11) with
  | Ok _ -> Alcotest.fail "depth 11 over cap 10 accepted"
  | Error e ->
    Alcotest.(check bool) "mentions nesting" true
      (String.length e > 0
      && List.exists
           (fun w -> w = "nesting")
           (String.split_on_char ' ' e)));
  (* The default cap keeps adversarial input from overflowing the
     stack: 100k levels must come back as a clean [Error]. *)
  match Json.parse (nested 100_000) with
  | Ok _ -> Alcotest.fail "100k levels accepted"
  | Error _ -> ()

let test_parse_depth_cap_objects () =
  let b = Buffer.create 256 in
  for _ = 1 to 12 do Buffer.add_string b {|{"k":|} done;
  Buffer.add_string b "1";
  for _ = 1 to 12 do Buffer.add_char b '}' done;
  let doc = Buffer.contents b in
  (match Json.parse ~max_depth:12 doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "object depth 12 under cap 12 rejected: %s" e);
  match Json.parse ~max_depth:11 doc with
  | Ok _ -> Alcotest.fail "object depth 12 over cap 11 accepted"
  | Error _ -> ()

let test_parse_size_cap () =
  let doc = Printf.sprintf {|{"pad":"%s"}|} (String.make 64 'x') in
  (match Json.parse ~max_bytes:(String.length doc) doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "input at the byte cap rejected: %s" e);
  (match Json.parse ~max_bytes:(String.length doc - 1) doc with
  | Ok _ -> Alcotest.fail "input over the byte cap accepted"
  | Error e ->
    Alcotest.(check bool) "mentions size" true
      (List.exists (fun w -> w = "large:") (String.split_on_char ' ' e)));
  Alcotest.(check bool) "default caps exposed" true
    (Json.default_max_bytes > 0 && Json.default_max_depth > 0)

let suite =
  [
    Alcotest.test_case "alignment" `Quick test_render_alignment;
    Alcotest.test_case "parse depth cap" `Quick test_parse_depth_cap;
    Alcotest.test_case "parse depth cap (objects)" `Quick test_parse_depth_cap_objects;
    Alcotest.test_case "parse size cap" `Quick test_parse_size_cap;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "int row" `Quick test_int_row;
    Alcotest.test_case "json serialization" `Quick test_json_serialization;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json float roundtrip" `Quick test_json_float_roundtrip;
    Alcotest.test_case "json versioned shape" `Quick test_json_versioned;
  ]
