(* Tests for the cluster tier: consistent-hash placement, the
   hash-indexed snapshot format (round trip, truncated footer,
   bit-flipped index, journal-tail precedence, O(1) open), journal
   shipping over the [ship] op, and a live router — differential
   forwarding over two shards plus an async failover promotion. *)

module Store = Server.Store
module Protocol = Server.Protocol
module Daemon = Server.Daemon
module Client = Server.Client
module Snapshot = Server.Snapshot
module Ring = Cluster.Ring
module Router = Cluster.Router
module Shipper = Cluster.Shipper
module Health = Cluster.Health

let fresh_path =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-cluster-%d-%d%s" (Unix.getpid ()) !counter suffix)

let rm path = try Sys.remove path with Sys_error _ -> ()

let mu1 = [| 4; 4; 4 |]
let t1 = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]
let mu2 = [| 6; 6; 6; 6 |]
let t2 = Intmat.of_ints [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]

(* -------------------------------- ring ------------------------------ *)

let test_ring_placement () =
  (* Placement is a pure function of (shards, vnodes): two builds
     agree everywhere, and every shard owns a non-trivial share. *)
  let a = Ring.make ~vnodes:64 3 and b = Ring.make ~vnodes:64 3 in
  for i = 0 to 999 do
    let h = Ring.fnv1a (Printf.sprintf "probe:%d" i) in
    Alcotest.(check int)
      (Printf.sprintf "deterministic probe %d" i)
      (Ring.shard_of a h) (Ring.shard_of b h)
  done;
  let hist = Ring.spread a ~samples:10_000 in
  Alcotest.(check int) "three buckets" 3 (Array.length hist);
  Alcotest.(check int) "all samples placed" 10_000
    (Array.fold_left ( + ) 0 hist);
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns >= 10%%" i)
        true
        (n >= 1_000))
    hist;
  (* One shard degenerates to the identity placement. *)
  let solo = Ring.make 1 in
  Alcotest.(check int) "solo ring" 0 (Ring.shard_of solo 0xDEADBEEF)

(* ---------------------------- snapshots ----------------------------- *)

let entry_a = (* deliberately synthetic, distinguishable entries *)
  { Store.conflict_free = true; full_rank = true;
    decided_by = "snapshot-side"; witness = None }

let entry_b =
  { Store.conflict_free = false; full_rank = true;
    decided_by = "journal-side"; witness = Some [ 1; 2; 3 ] }

let test_snapshot_roundtrip () =
  let journal = fresh_path ".store" in
  let snap = fresh_path ".snap" in
  let s = Store.open_ journal in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  let n = Store.compact_to_snapshot s ~snapshot:snap in
  Alcotest.(check int) "compacted records" 2 n;
  Store.close s;
  (* Reopen: the warm start comes from the snapshot, not replay. *)
  let s = Store.open_ ~snapshot:snap journal in
  let st = Store.stats s in
  Alcotest.(check string) "provenance" "snapshot+tail" st.Store.provenance;
  Alcotest.(check int) "no journal replay" 0 st.Store.loaded;
  Alcotest.(check int) "snapshot entries" 2 st.Store.snap_entries;
  Alcotest.(check bool) "key 1 served" true (Store.find s ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "key 2 served" true (Store.find s ~mu:mu2 t2 = Some e2);
  let st = Store.stats s in
  Alcotest.(check bool) "snapshot hits counted" true (st.Store.snap_hits >= 2);
  Alcotest.(check bool) "open is fast and measured" true (st.Store.open_ms >= 0.0);
  Store.close s;
  rm journal;
  rm snap

let test_snapshot_truncated_footer () =
  let journal = fresh_path ".store" in
  let snap = fresh_path ".snap" in
  let s = Store.open_ journal in
  Store.add s ~mu:mu1 t1 entry_a;
  Store.add s ~mu:mu2 t2 entry_b;
  ignore (Store.write_snapshot s snap);
  Store.close s;
  (* Chop the footer: the snapshot must fail open cleanly and the
     store must fall back to a plain journal replay. *)
  let size = (Unix.stat snap).Unix.st_size in
  let fd = Unix.openfile snap [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 5);
  Unix.close fd;
  (match Snapshot.open_reader snap with
  | Ok _ -> Alcotest.fail "truncated snapshot opened"
  | Error _ -> ());
  let s = Store.open_ ~snapshot:snap journal in
  let st = Store.stats s in
  Alcotest.(check string) "fell back to replay" "replay" st.Store.provenance;
  Alcotest.(check int) "no snapshot entries" 0 st.Store.snap_entries;
  Alcotest.(check int) "journal replayed instead" 2 st.Store.loaded;
  Alcotest.(check bool) "key 1 served" true
    (Store.find s ~mu:mu1 t1 = Some entry_a);
  Alcotest.(check bool) "key 2 served" true
    (Store.find s ~mu:mu2 t2 = Some entry_b);
  Store.close s;
  rm journal;
  rm snap

let read_u64_be ic pos =
  seek_in ic pos;
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor input_byte ic
  done;
  !v

let test_snapshot_bit_flip () =
  let journal = fresh_path ".store" in
  let snap = fresh_path ".snap" in
  let s = Store.open_ journal in
  Store.add s ~mu:mu1 t1 entry_a;
  Store.add s ~mu:mu2 t2 entry_b;
  ignore (Store.compact_to_snapshot s ~snapshot:snap);
  Store.close s;
  (* Damage the first index entry's offset field.  The index is sorted
     by (kind, hash), so the victim is the key with the smaller
     content hash; the other key must keep serving. *)
  let h1 = Store.key_hash ~mu:mu1 t1 and h2 = Store.key_hash ~mu:mu2 t2 in
  let ic = open_in_bin snap in
  let size = in_channel_length ic in
  let index_off = read_u64_be ic (size - 16) in
  close_in ic;
  let fd = Unix.openfile snap [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (index_off + 5) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd (index_off + 5) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let s = Store.open_ ~snapshot:snap journal in
  let victim_mu, victim_t, ok_mu, ok_t, ok_entry =
    if h1 <= h2 then (mu1, t1, mu2, t2, entry_b)
    else (mu2, t2, mu1, t1, entry_a)
  in
  Alcotest.(check bool) "damaged entry degrades to a miss" true
    (Store.find s ~mu:victim_mu victim_t = None);
  Alcotest.(check bool) "undamaged entry still serves" true
    (Store.find s ~mu:ok_mu ok_t = Some ok_entry);
  let st = Store.stats s in
  Alcotest.(check bool) "corruption counted, not fatal" true
    (st.Store.snap_corrupt >= 1);
  Store.close s;
  rm journal;
  rm snap

let test_snapshot_tail_precedence () =
  (* A journal-tail record for a key present in the snapshot must
     shadow the snapshot (last-wins). *)
  let j1 = fresh_path ".store" in
  let j2 = fresh_path ".store" in
  let snap = fresh_path ".snap" in
  let s = Store.open_ j1 in
  Store.add s ~mu:mu1 t1 entry_a;
  ignore (Store.write_snapshot s snap);
  Store.close s;
  let s = Store.open_ j2 in
  Store.add s ~mu:mu1 t1 entry_b;
  Store.close s;
  let s = Store.open_ ~snapshot:snap j2 in
  let st = Store.stats s in
  Alcotest.(check string) "provenance" "snapshot+tail" st.Store.provenance;
  Alcotest.(check bool) "journal tail wins" true
    (Store.find s ~mu:mu1 t1 = Some entry_b);
  Store.close s;
  rm j1;
  rm j2;
  rm snap

let test_snapshot_open_is_o1 () =
  let synthetic n =
    List.init n (fun i ->
        ('v', i * 7, Printf.sprintf "k%d" i, Printf.sprintf "line %d" i))
  in
  let small = fresh_path ".snap" and large = fresh_path ".snap" in
  ignore (Snapshot.write small (synthetic 100));
  ignore (Snapshot.write large (synthetic 5_000));
  let open_reads path count =
    match Snapshot.open_reader path with
    | Error e -> Alcotest.fail e
    | Ok r ->
      Alcotest.(check int) "entries" count (Snapshot.entries r);
      let n = Snapshot.reads r in
      Snapshot.close r;
      n
  in
  let rs = open_reads small 100 and rl = open_reads large 5_000 in
  Alcotest.(check int) "open cost is 2 reads (small)" 2 rs;
  Alcotest.(check int) "open cost is 2 reads (50x larger)" 2 rl;
  (* The first query adds one index read plus one read per located
     line — still bounded, never a function of snapshot size. *)
  (match Snapshot.open_reader large with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let lines = Snapshot.find_all r ~kind:'v' ~hash:7 in
    Alcotest.(check (list string)) "located line" [ "line 1" ] lines;
    Alcotest.(check bool) "query cost bounded" true (Snapshot.reads r <= 4);
    Snapshot.close r);
  rm small;
  rm large

(* ------------------------------ shipping ---------------------------- *)

let boot_daemon ?(jobs = 1) store_path =
  let sock = fresh_path ".sock" in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock sock)) with
      jobs = Some jobs;
      store_path = Some store_path;
      fsync_every = 4;
    }
  in
  let d = Daemon.create cfg in
  let th = Thread.create Daemon.run d in
  (d, th, sock)

let stop_daemon (d, th, _sock) =
  Daemon.initiate_drain d;
  Thread.join th

let journal_record_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  close_in ic;
  match lines with [] -> [] | _header :: records -> records

let test_ship_op () =
  (* Build one valid journal record, then drive the follower's [ship]
     op directly: ack with watermark echo, idempotent re-ship, and a
     malformed record rejected without damage. *)
  let src = fresh_path ".store" in
  let s = Store.open_ src in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  Store.add s ~mu:mu1 t1 e1;
  Store.close s;
  let line =
    match journal_record_lines src with
    | [ l ] -> l
    | ls -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length ls))
  in
  let follower_journal = fresh_path ".store" in
  let f = boot_daemon follower_journal in
  let _, _, sock = f in
  let conn = Client.connect (`Unix sock) in
  let reply =
    Client.request conn (Protocol.ship ~id:(Json.Int 1) ~seq:42 ~record:line ())
  in
  Alcotest.(check bool) "ship acked" true (Protocol.reply_ok reply);
  (match Json.member "watermark" reply with
  | Some (Json.Int 42) -> ()
  | _ -> Alcotest.fail "ship ack without watermark echo");
  let again =
    Client.request conn (Protocol.ship ~id:(Json.Int 2) ~seq:42 ~record:line ())
  in
  Alcotest.(check bool) "re-ship is idempotent" true (Protocol.reply_ok again);
  let bad =
    Client.request conn
      (Protocol.ship ~id:(Json.Int 3) ~seq:43 ~record:"not a journal record" ())
  in
  Alcotest.(check bool) "malformed record rejected" false (Protocol.reply_ok bad);
  Alcotest.(check (option string)) "bad_request" (Some "bad_request")
    (Protocol.error_code bad);
  Client.close conn;
  stop_daemon f;
  (* The shipped record landed in the follower's own journal. *)
  let fs = Store.open_ follower_journal in
  Alcotest.(check bool) "record replicated" true
    (Store.find fs ~mu:mu1 t1 = Some e1);
  Store.close fs;
  rm src;
  rm follower_journal

let test_shipper_pump () =
  let src = fresh_path ".store" in
  let follower_journal = fresh_path ".store" in
  let s = Store.open_ src in
  let e1 = Store.entry_of_verdict (Analysis.check ~mu:mu1 t1) in
  let e2 = Store.entry_of_verdict (Analysis.check ~mu:mu2 t2) in
  Store.add s ~mu:mu1 t1 e1;
  Store.add s ~mu:mu2 t2 e2;
  Store.flush s;
  let f = boot_daemon follower_journal in
  let _, _, sock = f in
  let sh = Shipper.create ~journal:src ~follower:(`Unix sock) () in
  Alcotest.(check int) "first pump ships everything" 2 (Shipper.pump sh);
  Alcotest.(check int) "second pump ships nothing" 0 (Shipper.pump sh);
  Alcotest.(check int) "watermark at end of journal" (Unix.stat src).Unix.st_size
    (Shipper.watermark sh);
  (* New appends ship incrementally. *)
  Store.add s ~mu:[| 5; 5; 5 |] t1
    (Store.entry_of_verdict (Analysis.check ~mu:[| 5; 5; 5 |] t1));
  Store.flush s;
  Alcotest.(check int) "incremental pump" 1 (Shipper.pump sh);
  Store.close s;
  Shipper.close sh;
  stop_daemon f;
  let fs = Store.open_ follower_journal in
  Alcotest.(check bool) "key 1 replicated" true (Store.find fs ~mu:mu1 t1 = Some e1);
  Alcotest.(check bool) "key 2 replicated" true (Store.find fs ~mu:mu2 t2 = Some e2);
  Alcotest.(check bool) "late key replicated" true
    (Store.find fs ~mu:[| 5; 5; 5 |] t1 <> None);
  Store.close fs;
  rm src;
  rm follower_journal

(* ------------------------------- router ----------------------------- *)

let boot_router ?(health_interval_ms = 60_000) ?(health_threshold = 3)
    ?(hedge = Router.No_hedge) specs =
  let sock = fresh_path ".sock" in
  let cfg =
    {
      (Router.default_config (Daemon.Unix_sock sock) specs) with
      pool_size = 1;
      shard_transport = Server.Wire.V1;
      health_interval_ms;
      health_threshold;
      hedge;
    }
  in
  let r = Router.create cfg in
  let th = Thread.create Router.run r in
  (r, th, sock)

let stop_router (r, th, _sock) =
  Router.initiate_drain r;
  Thread.join th

let direct_verdict (inst : Check.Instance.t) =
  Json.to_string
    (Protocol.json_of_wire
       (Protocol.wire_of_verdict
          (Analysis.check ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat)))

let test_router_differential () =
  let j0 = fresh_path ".store" and j1 = fresh_path ".store" in
  let s0 = boot_daemon j0 and s1 = boot_daemon j1 in
  let _, _, sock0 = s0 and _, _, sock1 = s1 in
  let specs =
    [
      { Router.primary = `Unix sock0; follower = None; journal = Some j0 };
      { Router.primary = `Unix sock1; follower = None; journal = Some j1 };
    ]
  in
  let r = boot_router specs in
  let _, _, rsock = r in
  (* A verifying load through the router: every verdict byte-equal to
     a local Analysis.check, nothing shed, nothing lost. *)
  let report =
    Client.load (`Unix rsock)
      {
        Client.default_load with
        requests = 80;
        concurrency = 4;
        distinct = 16;
        seed = 3;
        verify = true;
      }
  in
  Alcotest.(check int) "all ok" 80 report.Client.ok;
  Alcotest.(check int) "no errors" 0 report.Client.errors;
  Alcotest.(check int) "no shed" 0 report.Client.shed;
  Alcotest.(check int) "no disagreements" 0 report.Client.disagreements;
  (* Router-inline ops: stats identifies the role; ship is refused
     (replication is shard-direct, never through the router). *)
  let conn = Client.connect (`Unix rsock) in
  let stats = Client.request conn (Protocol.stats_request ~id:(Json.Int 9) ()) in
  (match Json.member "role" stats with
  | Some (Json.Str "router") -> ()
  | _ -> Alcotest.fail "stats reply without role=router");
  let ship =
    Client.request conn (Protocol.ship ~id:(Json.Int 10) ~seq:1 ~record:"x" ())
  in
  Alcotest.(check (option string)) "ship refused" (Some "bad_request")
    (Protocol.error_code ship);
  Client.close conn;
  stop_router r;
  stop_daemon s0;
  stop_daemon s1;
  rm j0;
  rm j1

let test_router_failover () =
  (* One shard with a follower; kill the primary and let the health
     monitor promote.  Served bytes must stay correct across the
     transition and no acked write may be lost. *)
  let pj = fresh_path ".store" and fj = fresh_path ".store" in
  let primary = boot_daemon pj in
  let follower = boot_daemon fj in
  let _, _, psock = primary and _, _, fsock = follower in
  let specs =
    [
      {
        Router.primary = `Unix psock;
        follower = Some (`Unix fsock);
        journal = Some pj;
      };
    ]
  in
  let r = boot_router ~health_interval_ms:50 ~health_threshold:2 specs in
  let router, _, rsock = r in
  let inst = Check.Gen.ith ~seed:11 ~size:4 0 in
  let expected = direct_verdict inst in
  let analyze id =
    Protocol.analyze ~id:(Json.Int id)
      ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat
  in
  let session = Client.session (`Unix rsock) in
  (match Client.call session (analyze 0) with
  | Ok (reply, _) ->
    Alcotest.(check bool) "pre-kill ok" true (Protocol.reply_ok reply);
    (match Json.member "verdict" reply with
    | Some v -> Alcotest.(check string) "pre-kill bytes" expected (Json.to_string v)
    | None -> Alcotest.fail "analyze reply without verdict")
  | Error e -> Alcotest.fail ("pre-kill analyze failed: " ^ e));
  stop_daemon primary;
  (* Poll until the monitor promotes the follower and service resumes;
     session retries absorb the overloaded window. *)
  let deadline = 200 in
  let rec await n =
    if n >= deadline then Alcotest.fail "failover never completed"
    else
      match Client.call session (analyze (1000 + n)) with
      | Ok (reply, _) when Protocol.reply_ok reply -> reply
      | _ ->
        Thread.delay 0.05;
        await (n + 1)
  in
  let reply = await 0 in
  (match Json.member "verdict" reply with
  | Some v ->
    Alcotest.(check string) "post-failover bytes" expected (Json.to_string v)
  | None -> Alcotest.fail "post-failover reply without verdict");
  (match List.assoc_opt "promotions" (Router.stats_fields router) with
  | Some (Json.Int n) -> Alcotest.(check int) "one promotion" 1 n
  | _ -> Alcotest.fail "router stats without promotions");
  Client.close_session session;
  stop_router r;
  stop_daemon follower;
  rm pj;
  rm fj

let test_health_breaker () =
  (* The latency breaker state machine: Closed opens on an EWMA over
     the limit, cools down to Half_open on the probe stream, and a
     fast trial recovers (restarting the EWMA) while a slow one
     re-opens.  The crash edge — [`Failed] exactly on the threshold-th
     consecutive failure — is untouched by any of it. *)
  let h = Health.create ~threshold:3 ~latency_limit_ms:10. ~cooldown:2 () in
  Alcotest.(check string) "starts closed" "closed" (Health.state_name h);
  Alcotest.(check bool) "fast probe ok" true (Health.note h ~latency_ms:1. ~ok:true () = `Ok);
  Alcotest.(check bool) "still ok" true (Health.note h ~latency_ms:2. ~ok:true () = `Ok);
  Alcotest.(check string) "fast probes keep it closed" "closed" (Health.state_name h);
  (* One grossly slow probe drags the EWMA (alpha 0.3) over 10 ms. *)
  Alcotest.(check bool) "slow probe opens" true
    (Health.note h ~latency_ms:100. ~ok:true () = `Opened);
  Alcotest.(check string) "open" "open" (Health.state_name h);
  let frozen = Health.ewma_ms h in
  (* While open the EWMA is frozen and [cooldown] probes tick it to
     half-open; the transition itself is not news. *)
  Alcotest.(check bool) "cooldown 1" true (Health.note h ~latency_ms:100. ~ok:true () = `Ok);
  Alcotest.(check string) "still open" "open" (Health.state_name h);
  Alcotest.(check bool) "cooldown 2" true (Health.note h ~latency_ms:100. ~ok:true () = `Ok);
  Alcotest.(check string) "half-open after cooldown" "half_open" (Health.state_name h);
  Alcotest.(check (float 0.001)) "ewma frozen while open" frozen (Health.ewma_ms h);
  (* Slow trial: straight back to open. *)
  Alcotest.(check bool) "slow trial re-opens" true
    (Health.note h ~latency_ms:50. ~ok:true () = `Ok);
  Alcotest.(check string) "re-opened" "open" (Health.state_name h);
  Alcotest.(check bool) "cooldown again 1" true (Health.note h ~latency_ms:50. ~ok:true () = `Ok);
  Alcotest.(check bool) "cooldown again 2" true (Health.note h ~latency_ms:50. ~ok:true () = `Ok);
  Alcotest.(check string) "half-open again" "half_open" (Health.state_name h);
  (* Fast trial: recovered, EWMA restarted from the trial sample. *)
  Alcotest.(check bool) "fast trial recovers" true
    (Health.note h ~latency_ms:3. ~ok:true () = `Recovered);
  Alcotest.(check string) "closed again" "closed" (Health.state_name h);
  Alcotest.(check (float 0.001)) "ewma restarted" 3. (Health.ewma_ms h);
  Alcotest.(check int) "two opens counted" 2 (Health.opens h);
  (* Crash edge: exactly one [`Failed], on the third failure in a row. *)
  Alcotest.(check bool) "failure 1" true (Health.note h ~ok:false () = `Ok);
  Alcotest.(check bool) "failure 2" true (Health.note h ~ok:false () = `Ok);
  Alcotest.(check bool) "failure 3 crosses" true (Health.note h ~ok:false () = `Failed);
  Alcotest.(check bool) "staying down is not news" true (Health.note h ~ok:false () = `Ok)

let test_router_hedging () =
  (* One shard, latency faults at rate 1: the primary cannot answer
     before the hedge delay, so every analyze re-issues on the
     follower.  The winning reply must be byte-identical to a local
     check, and both journals must end up holding the same record —
     the byte-exactness that makes hedging safe. *)
  let pj = fresh_path ".store" and fj = fresh_path ".store" in
  let primary = boot_daemon pj in
  let follower = boot_daemon fj in
  let _, _, psock = primary and _, _, fsock = follower in
  let specs =
    [
      {
        Router.primary = `Unix psock;
        follower = Some (`Unix fsock);
        journal = Some pj;
      };
    ]
  in
  let r = boot_router ~hedge:(Router.Fixed_ms 0) specs in
  let router, _, rsock = r in
  let instances = Array.init 6 (fun i -> Check.Gen.ith ~seed:19 ~size:4 i) in
  let plan = Fault.Plan.make ~rate:1.0 ~seed:5 ~delay_ms:15 ~classes:[ "latency" ] () in
  Fault.Plan.arm plan;
  let session = Client.session (`Unix rsock) in
  Array.iteri
    (fun i inst ->
      match
        Client.call session
          (Protocol.analyze ~id:(Json.Int i) ~mu:inst.Check.Instance.mu
             inst.Check.Instance.tmat)
      with
      | Ok (reply, _) ->
        Alcotest.(check bool) "hedged analyze ok" true (Protocol.reply_ok reply);
        (match Json.member "verdict" reply with
        | Some v ->
          Alcotest.(check string) "first reply byte-exact" (direct_verdict inst)
            (Json.to_string v)
        | None -> Alcotest.fail "analyze reply without verdict")
      | Error e -> Alcotest.fail ("hedged analyze failed: " ^ e))
    instances;
  Fault.Plan.disarm ();
  let stats = Router.stats_fields router in
  (match List.assoc_opt "hedges" stats with
  | Some (Json.Int n) -> Alcotest.(check bool) "hedges fired" true (n >= 1)
  | _ -> Alcotest.fail "router stats without hedges");
  Client.close_session session;
  stop_router r;
  stop_daemon primary;
  stop_daemon follower;
  (* Both sides computed the same request stream: each journal holds
     the identical record for every instance. *)
  let sp = Store.open_ pj and sf = Store.open_ fj in
  Array.iter
    (fun (inst : Check.Instance.t) ->
      let find s =
        match Store.find s ~mu:inst.Check.Instance.mu inst.Check.Instance.tmat with
        | Some e -> Json.to_string (Protocol.json_of_wire (Protocol.wire_of_entry e))
        | None -> Alcotest.fail "hedged instance missing from a journal"
      in
      let on_primary = find sp and on_follower = find sf in
      Alcotest.(check string) "hedged pair byte-identical" on_primary on_follower;
      Alcotest.(check string) "and equal to ground truth" (direct_verdict inst)
        on_primary)
    instances;
  Store.close sp;
  Store.close sf;
  rm pj;
  rm fj

let suite =
  [
    Alcotest.test_case "ring placement" `Quick test_ring_placement;
    Alcotest.test_case "snapshot round trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot truncated footer" `Quick
      test_snapshot_truncated_footer;
    Alcotest.test_case "snapshot bit-flipped index" `Quick test_snapshot_bit_flip;
    Alcotest.test_case "snapshot journal-tail precedence" `Quick
      test_snapshot_tail_precedence;
    Alcotest.test_case "snapshot open is O(1)" `Quick test_snapshot_open_is_o1;
    Alcotest.test_case "ship op" `Quick test_ship_op;
    Alcotest.test_case "shipper pump" `Quick test_shipper_pump;
    Alcotest.test_case "router differential" `Quick test_router_differential;
    Alcotest.test_case "router failover" `Quick test_router_failover;
    Alcotest.test_case "health breaker" `Quick test_health_breaker;
    Alcotest.test_case "router hedging" `Quick test_router_hedging;
  ]
