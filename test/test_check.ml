(* The differential oracle subsystem (lib/check): corpus replay,
   oracle-vs-theorem agreement on the paper's own examples, shrinker
   laws, seed determinism at any degree of parallelism, and budget
   degradation soundness. *)

let im = Intmat.of_ints
let inst ~mu t = Check.Instance.make ~mu (im t)

let no_disagreement what i =
  match Check.Diff.check_instance i with
  | [] -> ()
  | ds ->
    Alcotest.failf "%s: %s disagrees: %s" what
      (Check.Instance.to_string i)
      (String.concat "; "
         (List.map
            (fun (d : Check.Diff.disagreement) ->
              Check.Diff.path_name d.Check.Diff.path ^ ": " ^ d.Check.Diff.detail)
            ds))

(* ------------------------- corpus replay --------------------------- *)

let test_corpus_replay () =
  let cases = Check.Corpus.load_dir "corpus" in
  Alcotest.(check bool) "corpus directory is not empty" true (cases <> []);
  List.iter (fun (name, i) -> no_disagreement name i) cases

let test_corpus_roundtrip () =
  for i = 0 to 30 do
    let x = Check.Gen.ith ~seed:11 ~size:4 i in
    let y = Check.Instance.of_string (Check.Instance.to_string x) in
    Alcotest.(check bool) "to_string/of_string round-trip" true (Check.Instance.equal x y)
  done

(* The boundary corpus cases pin a *direction*, not just agreement:
   |gamma_i| = mu_i exactly is a conflict (Theorem 2.2 feasibility is
   strict), one less and the same kernel vector escapes. *)
let test_boundary_directions () =
  let conflict = inst ~mu:[| 1; 1; 2 |] [ [ 5; 3; 4 ] ] in
  let free = inst ~mu:[| 1; 1; 1 |] [ [ 5; 3; 4 ] ] in
  Alcotest.(check bool) "(1,1,-2) on the boundary conflicts" false
    (Check.Oracle.is_conflict_free conflict);
  Alcotest.(check bool) "one tighter bound and it is free" true
    (Check.Oracle.is_conflict_free free);
  let adj = inst ~mu:[| 2; 1 |] [ [ 1; -2 ] ] in
  Alcotest.(check bool) "adjugate-path boundary conflicts" false
    (Check.Oracle.is_conflict_free adj);
  (* The square rank-deficient regression: conflict-free despite
     rank T < n (the kernel escapes the box). *)
  let sq = inst ~mu:[| 1; 1 |] [ [ 4; 3 ]; [ -4; -3 ] ] in
  Alcotest.(check bool) "rank-deficient square is free here" true
    (Check.Oracle.is_conflict_free sq);
  Alcotest.(check bool) "Theorems.decide agrees" true
    (fst (Theorems.decide ~mu:[| 1; 1 |] (im [ [ 4; 3 ]; [ -4; -3 ] ])));
  Alcotest.(check bool) "Analysis.check agrees" true
    (Analysis.is_conflict_free ~mu:[| 1; 1 |] (im [ [ 4; 3 ]; [ -4; -3 ] ]))

(* ------------------------ paper examples --------------------------- *)

let paper_examples () =
  let mu3 = [| 4; 4; 4 |] in
  [
    (* Example 2.1 / Equation 2.8: not conflict-free on mu = 6. *)
    ("equation-2.8", inst ~mu:[| 6; 6; 6; 6 |] [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ]);
    (* Figure 1's diagonal collisions and its conflict-free sibling. *)
    ("figure-1-diagonal", inst ~mu:[| 4; 4 |] [ [ 1; -1 ] ]);
    ("figure-1-free", inst ~mu:[| 4; 4 |] [ [ 5; -3 ] ]);
    (* Example 3.1: the paper's matmul S under several schedules. *)
    ( "matmul-pi-1-1-1",
      Check.Instance.make ~mu:mu3 (Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 1; 1 ])) );
    ( "matmul-pi-1-4-1",
      Check.Instance.make ~mu:mu3 (Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 1; 4; 1 ])) );
    ( "matmul-pi-2-3-2",
      Check.Instance.make ~mu:mu3 (Intmat.append_row Matmul.paper_s (Intvec.of_ints [ 2; 3; 2 ])) );
    (* Transitive closure's space mapping with a valid schedule. *)
    ( "tc-paper-s",
      Check.Instance.make ~mu:mu3
        (Intmat.append_row Transitive_closure.paper_s (Intvec.of_ints [ 5; 1; 1 ])) );
    (* Square identity: the pure full-rank fast path. *)
    ("identity-3", inst ~mu:[| 2; 2; 2 |] [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]);
  ]

let test_paper_examples () =
  List.iter (fun (name, i) -> no_disagreement name i) (paper_examples ())

(* ---------------------- shrinker properties ------------------------ *)

let test_shrink_idempotent () =
  let shrunk = ref 0 in
  for i = 0 to 199 do
    let x = Check.Gen.ith ~seed:23 ~size:3 i in
    (* Shrink against a property that genuinely holds of some inputs:
       "the oracle finds a collision". *)
    let keeps_failing c = not (Check.Oracle.is_conflict_free c) in
    if keeps_failing x then begin
      incr shrunk;
      let s1 = Check.Shrink.shrink ~keeps_failing x in
      let s2 = Check.Shrink.shrink ~keeps_failing s1 in
      Alcotest.(check bool) "still failing" true (keeps_failing s1);
      Alcotest.(check bool) "idempotent" true (Check.Instance.equal s1 s2);
      Alcotest.(check bool) "no larger than the input" true
        (Check.Instance.size s1 <= Check.Instance.size x)
    end
  done;
  Alcotest.(check bool) "the property exercised the shrinker" true (!shrunk > 20)

let test_shrink_candidates_strictly_smaller () =
  for i = 0 to 49 do
    let x = Check.Gen.ith ~seed:31 ~size:4 i in
    Seq.iter
      (fun c ->
        Alcotest.(check bool) "candidate strictly smaller" true
          (Check.Instance.size c < Check.Instance.size x))
      (Check.Shrink.candidates x)
  done

(* A deliberate conflict with large bounds must shrink into a small
   reproducer: this is the acceptance bar for fuzz counterexamples
   ("all mu_i <= 4"). *)
let test_shrink_lands_small () =
  let big = inst ~mu:[| 9; 9 |] [ [ 1; -1 ] ] in
  let keeps_failing c = not (Check.Oracle.is_conflict_free c) in
  Alcotest.(check bool) "big instance conflicts" true (keeps_failing big);
  let s = Check.Shrink.shrink ~keeps_failing big in
  Alcotest.(check bool) "still conflicts" true (keeps_failing s);
  Array.iter (fun m -> Alcotest.(check bool) "mu_i <= 4" true (m <= 4)) s.Check.Instance.mu

(* ------------------------ seed determinism ------------------------- *)

let test_stream_determinism () =
  let a = List.init 80 (Check.Gen.ith ~seed:7 ~size:4) in
  let b = List.init 80 (Check.Gen.ith ~seed:7 ~size:4) in
  Alcotest.(check bool) "same seed, same stream" true
    (List.for_all2 Check.Instance.equal a b);
  let c = List.init 80 (Check.Gen.ith ~seed:8 ~size:4) in
  Alcotest.(check bool) "different seed, different stream" false
    (List.for_all2 Check.Instance.equal a c)

let failures_equal (f1 : Check.Diff.failure) (f2 : Check.Diff.failure) =
  f1.Check.Diff.index = f2.Check.Diff.index
  && Check.Instance.equal f1.Check.Diff.instance f2.Check.Diff.instance
  && Check.Instance.equal f1.Check.Diff.shrunk f2.Check.Diff.shrunk
  && f1.Check.Diff.disagreements = f2.Check.Diff.disagreements

let test_run_jobs_invariant () =
  let r1 = Check.Diff.run ~jobs:1 ~seed:42 ~count:60 ~size:3 () in
  let r4 = Check.Diff.run ~jobs:4 ~seed:42 ~count:60 ~size:3 () in
  Alcotest.(check int) "same checked count" r1.Check.Diff.checked r4.Check.Diff.checked;
  Alcotest.(check bool) "same failures at jobs=1 and jobs=4" true
    (List.length r1.Check.Diff.failures = List.length r4.Check.Diff.failures
    && List.for_all2 failures_equal r1.Check.Diff.failures r4.Check.Diff.failures)

let test_fuzz_smoke_clean () =
  let r = Check.Diff.run ~jobs:2 ~seed:42 ~count:120 ~size:3 () in
  Alcotest.(check int) "no disagreements" 0 (List.length r.Check.Diff.failures)

(* ----------------------- budget degradation ------------------------ *)

let test_budget_degrades_to_bounded_never_wrong () =
  for i = 0 to 119 do
    let x = Check.Gen.ith ~seed:97 ~size:3 i in
    let truth = Check.Oracle.is_conflict_free x in
    List.iter
      (fun budget ->
        let v =
          Analysis.check ~budget ~mu:x.Check.Instance.mu x.Check.Instance.tmat
        in
        Alcotest.(check bool) "pressed budget answers Bounded" true
          (v.Analysis.exactness = Analysis.Bounded);
        Alcotest.(check bool) "degraded verdict still matches the oracle" truth
          v.Analysis.conflict_free)
      [
        Engine.Budget.make ~max_oracle_calls:0 ();
        Engine.Budget.make ~deadline_ms:0 ();
      ]
  done

let test_unpressed_budget_stays_exact () =
  for i = 0 to 59 do
    let x = Check.Gen.ith ~seed:98 ~size:3 i in
    let v =
      Analysis.check ~budget:(Engine.Budget.make ()) ~mu:x.Check.Instance.mu
        x.Check.Instance.tmat
    in
    Alcotest.(check bool) "exact" true (v.Analysis.exactness = Analysis.Exact)
  done

(* -------------------- k = n-2 boundary audit ----------------------- *)

(* Exhaustive: every 1x3 mapping with entries in -3..3 against every
   mu in {1,2,3}^3.  The sufficiency conditions of Theorems 4.6/4.7
   must never claim conflict-freedom when the brute-force oracle finds
   a collision — in particular when a kernel-vector entry lands on
   |gamma_i| = mu_i exactly (feasibility is strict). *)
let test_codim2_sufficiency_sound_at_boundary () =
  let checked = ref 0 in
  let entries = [ -3; -2; -1; 0; 1; 2; 3 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              if (a, b, c) <> (0, 0, 0) then
                let t = im [ [ a; b; c ] ] in
                if Intmat.rank t = 1 then
                  List.iter
                    (fun mu ->
                      incr checked;
                      let free =
                        Check.Oracle.is_conflict_free (Check.Instance.make ~mu t)
                      in
                      let inp = Theorems.make_input ~mu t in
                      if Theorems.sufficient_cond5 inp then
                        Alcotest.(check bool) "4.6 claim is sound" true free;
                      if Theorems.nec_suff_n_minus_2 inp then
                        Alcotest.(check bool) "4.7 claim is sound" true free)
                    [ [| 1; 1; 1 |]; [| 2; 2; 2 |]; [| 3; 3; 3 |];
                      [| 1; 2; 3 |]; [| 3; 2; 1 |]; [| 1; 1; 3 |] ])
            entries)
        entries)
    entries;
  Alcotest.(check bool) "swept the family" true (!checked > 2000)

(* --------------------- generator invariants ------------------------ *)

let test_dependences_lex_positive () =
  for i = 0 to 49 do
    let rng = Random.State.make [| 0xDE; i |] in
    let cols = Check.Gen.dependences rng ~n:3 ~m:4 in
    Alcotest.(check int) "m columns" 4 (List.length cols);
    List.iter
      (fun d ->
        match List.find_opt (fun x -> x <> 0) d with
        | Some first -> Alcotest.(check bool) "lexicographically positive" true (first > 0)
        | None -> Alcotest.fail "zero dependence column")
      cols
  done

let test_generated_instances_fit_oracle () =
  for i = 0 to 199 do
    let x = Check.Gen.ith ~seed:5 ~size:5 i in
    Alcotest.(check bool) "within the oracle guard" true
      (Check.Instance.points x <= Check.Oracle.max_points)
  done

let suite =
  [
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "boundary case directions" `Quick test_boundary_directions;
    Alcotest.test_case "paper examples: all fast paths = oracle" `Quick test_paper_examples;
    Alcotest.test_case "shrinker is idempotent" `Quick test_shrink_idempotent;
    Alcotest.test_case "shrink candidates strictly smaller" `Quick
      test_shrink_candidates_strictly_smaller;
    Alcotest.test_case "shrinking lands small (mu_i <= 4)" `Quick test_shrink_lands_small;
    Alcotest.test_case "seed determinism of the stream" `Quick test_stream_determinism;
    Alcotest.test_case "Diff.run invariant in --jobs" `Quick test_run_jobs_invariant;
    Alcotest.test_case "fuzz smoke: 120 instances clean" `Quick test_fuzz_smoke_clean;
    Alcotest.test_case "pressed budget: bounded, never wrong" `Quick
      test_budget_degrades_to_bounded_never_wrong;
    Alcotest.test_case "unpressed budget stays exact" `Quick test_unpressed_budget_stays_exact;
    Alcotest.test_case "k=n-2 boundary audit (4.6/4.7 sound)" `Quick
      test_codim2_sufficiency_sound_at_boundary;
    Alcotest.test_case "dependence columns lexicographically positive" `Quick
      test_dependences_lex_positive;
    Alcotest.test_case "generated instances fit the oracle" `Quick
      test_generated_instances_fit_oracle;
  ]
