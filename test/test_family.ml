(* Tests of the mu-parametric family layer (lib/mapping/family.ml):
   the soundness contract says a [Decided] evaluation must agree
   byte-for-byte with the concrete cascade at the same mu, so most of
   these are differential properties against the box oracle and
   [Analysis.check], plus explicit boundary cases at |gamma_i| = mu_i
   where the piecewise condition switches arms. *)

let mat = Intmat.of_ints

let check_eval name fam ~mu ~free ~method_ ~witness =
  match Family.eval fam ~mu with
  | Family.Residual -> Alcotest.failf "%s: expected Decided, got Residual" name
  | Family.Decided { conflict_free; method_ = m; witness = w } ->
    Alcotest.(check bool) (name ^ ": conflict_free") free conflict_free;
    Alcotest.(check string)
      (name ^ ": method")
      (Family.method_name method_)
      (Family.method_name m);
    Alcotest.(check (option (list int)))
      (name ^ ": witness")
      (Option.map Array.to_list witness)
      (Option.map (fun v -> Array.to_list (Array.map Zint.to_int v)) w)

(* Paper Example 3.1: T = [1 1 -1; 1 4 1], unique conflict vector
   gamma = (5,-2,3).  The family must flip exactly at the box boundary
   |gamma_i| <= mu_i, and its witness must be gamma itself. *)
let test_adjugate_boundary () =
  let t = mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let fam = Family.build t in
  Alcotest.(check string) "shape" "adjugate" (Family.shape_name fam);
  let gamma =
    match fam.Family.shape with
    | Family.Adjugate g -> g
    | _ -> Alcotest.fail "expected Adjugate shape"
  in
  Alcotest.(check (list int)) "gamma" [ 5; -2; 3 ]
    (Array.to_list (Array.map Zint.to_int gamma));
  (* Trapped arm: mu = |gamma| exactly (boundary is inclusive for the
     box, so equality means conflict). *)
  check_eval "mu=(5,2,3)" fam ~mu:[| 5; 2; 3 |] ~free:false
    ~method_:Family.Adjugate_form
    ~witness:(Some [| 5; -2; 3 |]);
  (* Escape arm: shrinking any single coordinate below |gamma_i| frees
     the mapping. *)
  check_eval "mu=(4,2,3)" fam ~mu:[| 4; 2; 3 |] ~free:true
    ~method_:Family.Adjugate_form ~witness:None;
  check_eval "mu=(5,1,3)" fam ~mu:[| 5; 1; 3 |] ~free:true
    ~method_:Family.Adjugate_form ~witness:None;
  check_eval "mu=(5,2,2)" fam ~mu:[| 5; 2; 2 |] ~free:true
    ~method_:Family.Adjugate_form ~witness:None;
  (* Growing the box past the boundary keeps the conflict. *)
  check_eval "mu=(9,9,9)" fam ~mu:[| 9; 9; 9 |] ~free:false
    ~method_:Family.Adjugate_form
    ~witness:(Some [| 5; -2; 3 |])

(* Exhaustive sweep of the adjugate family across the boundary grid:
   it must decide every instance and agree with the box oracle. *)
let test_adjugate_sweep_vs_oracle () =
  let t = mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let fam = Family.build t in
  for m0 = 1 to 7 do
    for m1 = 1 to 4 do
      for m2 = 1 to 5 do
        let mu = [| m0; m1; m2 |] in
        match Family.eval fam ~mu with
        | Family.Residual ->
          Alcotest.failf "adjugate family residual at mu=(%d,%d,%d)" m0 m1 m2
        | Family.Decided { conflict_free; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "mu=(%d,%d,%d)" m0 m1 m2)
            (Conflict.is_conflict_free ~mu t)
            conflict_free
      done
    done
  done

let test_const_free () =
  let t = mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ]; [ 0; 1; 0 ] ] in
  let fam = Family.build t in
  Alcotest.(check string) "shape" "const-free" (Family.shape_name fam);
  Alcotest.(check bool) "full rank" true fam.Family.full_rank;
  check_eval "any mu" fam ~mu:[| 1; 1; 1 |] ~free:true
    ~method_:Family.Full_rank_square ~witness:None;
  check_eval "big mu" fam ~mu:[| 100; 100; 100 |] ~free:true
    ~method_:Family.Full_rank_square ~witness:None

let test_rank_deficient_residual () =
  let t = mat [ [ 1; 2; 3 ]; [ 2; 4; 6 ] ] in
  let fam = Family.build t in
  Alcotest.(check string) "shape" "residual" (Family.shape_name fam);
  Alcotest.(check bool) "full rank" false fam.Family.full_rank;
  (match Family.eval fam ~mu:[| 3; 3; 3 |] with
  | Family.Residual -> ()
  | Family.Decided _ -> Alcotest.fail "rank-deficient family must be residual")

(* Cascade with a kernel column trapped at every mu >= 1: the witness
   must be the sign-normalized kernel column, first in scan order. *)
let test_cascade_trapped_column () =
  let t = mat [ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ] in
  let fam = Family.build t in
  Alcotest.(check string) "shape" "cascade" (Family.shape_name fam);
  (match Family.eval fam ~mu:[| 1; 1; 1; 1 |] with
  | Family.Residual -> Alcotest.fail "trapped kernel column must decide"
  | Family.Decided { conflict_free; method_ = m; witness } ->
    Alcotest.(check bool) "conflict" false conflict_free;
    Alcotest.(check string) "method"
      (Family.method_name Family.Column_infeasible)
      (Family.method_name m);
    (match witness with
    | None -> Alcotest.fail "trapped column must come with a witness"
    | Some w ->
      let wi = Array.map Zint.to_int w in
      Alcotest.(check bool) "witness in kernel" true
        (Intvec.is_zero (Intmat.mul_vec t w));
      Alcotest.(check bool) "witness inside box" true
        (Array.for_all (fun x -> abs x <= 1) wi)))

(* Cascade boundary in both arms: T = [1 0 3 0; 0 1 0 3] has kernel
   columns with a 3-entry, so mu_2/mu_3 < 3 escapes them while
   mu >= (.,.,3,3) traps one. *)
let test_cascade_boundary_both_arms () =
  let t = mat [ [ 1; 0; 3; 0 ]; [ 0; 1; 0; 3 ] ] in
  let fam = Family.build t in
  Alcotest.(check string) "shape" "cascade" (Family.shape_name fam);
  (* Trapped arm at the boundary: a kernel column fits the box. *)
  (match Family.eval fam ~mu:[| 3; 3; 3; 3 |] with
  | Family.Decided { conflict_free; _ } ->
    Alcotest.(check bool) "trapped at boundary" false conflict_free
  | Family.Residual -> Alcotest.fail "trapped cascade must decide");
  (* One step inside the boundary the columns escape; whatever the
     family answers (decided or residual) must agree with the oracle. *)
  let mu = [| 2; 2; 2; 2 |] in
  (match Family.eval fam ~mu with
  | Family.Residual -> ()
  | Family.Decided { conflict_free; _ } ->
    Alcotest.(check bool) "escape arm agrees with oracle"
      (Conflict.is_conflict_free ~mu t)
      conflict_free)

(* Codimension > 3 with C(n, n-k) past the subset cap: the family must
   drop its sufficient arm (None) rather than spend forever in
   Theorem 4.5 subsets. *)
let test_cond4_cap_drops_sufficient () =
  let k = 15 and n = 30 in
  let t = Intmat.make k n (fun i j -> Zint.of_int (if i = j then 1 else 0)) in
  let fam = Family.build t in
  match fam.Family.shape with
  | Family.Cascade { sufficient = None; kernel } ->
    Alcotest.(check int) "kernel columns" (n - k) (List.length kernel)
  | Family.Cascade { sufficient = Some _; _ } ->
    Alcotest.fail "expected the subset cap to drop the sufficient arm"
  | _ -> Alcotest.fail "expected a cascade shape"

(* Codec: to_string/of_string round-trip on generated families, and
   rejection of malformed strings. *)
let prop_codec_roundtrip =
  QCheck.Test.make ~name:"family codec round-trips" ~count:300 QCheck.int
    (fun seed ->
      let inst = Check.Gen.ith ~seed:(abs seed) ~size:7 0 in
      let fam = Family.build inst.Check.Instance.tmat in
      let s = Family.to_string fam in
      match Family.of_string s with
      | None -> QCheck.Test.fail_reportf "codec rejected its own output %S" s
      | Some fam' ->
        String.equal s (Family.to_string fam')
        && Family.eval fam ~mu:inst.Check.Instance.mu
           = Family.eval fam' ~mu:inst.Check.Instance.mu)

let test_codec_rejects_malformed () =
  let reject s =
    match Family.of_string s with
    | None -> ()
    | Some _ -> Alcotest.failf "of_string accepted %S" s
  in
  reject "";
  reject "garbage";
  reject "2:3:1:";
  reject "2:3:1:A(5,-2,3";
  reject "2:3:1:A(5,-2,3)x";
  reject "2:3:2:A(5,-2,3)";
  reject "2:3:1:K(1,0)!q@T";
  let t = mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let s = Family.to_string (Family.build t) in
  Alcotest.(check string) "codec form" "2:3:1:A(5,-2,3)" s;
  reject (String.sub s 0 (String.length s - 1))

(* The headline soundness property: on random instances, whenever the
   family decides, the boolean agrees with the exact box oracle and a
   false verdict's witness is a real in-box conflict vector. *)
let prop_family_sound_vs_oracle =
  QCheck.Test.make ~name:"family Decided agrees with the box oracle" ~count:300
    QCheck.int (fun seed ->
      let inst = Check.Gen.ith ~seed:(abs seed) ~size:7 0 in
      let t = inst.Check.Instance.tmat and mu = inst.Check.Instance.mu in
      let fam = Family.build t in
      match Family.eval fam ~mu with
      | Family.Residual -> true
      | Family.Decided { conflict_free; witness; _ } ->
        let ok_bool = conflict_free = Check.Oracle.is_conflict_free inst in
        let ok_witness =
          match witness with
          | None -> true
          | Some w ->
            Intvec.is_zero (Intmat.mul_vec t w)
            && (not (Intvec.is_zero w))
            && Array.for_all2
                 (fun x m -> Zint.(compare (abs x) (of_int m)) <= 0)
                 w mu
        in
        ok_bool && ok_witness)

(* Byte-match against Analysis.check: same boolean, method name,
   full-rank flag and witness; family verdicts are always exact. *)
let prop_family_matches_check =
  QCheck.Test.make ~name:"family verdict byte-matches Analysis.check"
    ~count:300 QCheck.int (fun seed ->
      let inst = Check.Gen.ith ~seed:(abs seed) ~size:7 1 in
      let t = inst.Check.Instance.tmat and mu = inst.Check.Instance.mu in
      match Analysis.eval_family (Analysis.family t) ~mu with
      | None -> true
      | Some fv ->
        let v = Analysis.check ~mu t in
        fv.Analysis.conflict_free = v.Analysis.conflict_free
        && fv.Analysis.full_rank = v.Analysis.full_rank
        && String.equal
             (Analysis.decided_by_name fv.Analysis.decided_by)
             (Analysis.decided_by_name v.Analysis.decided_by)
        && Option.equal Intvec.equal fv.Analysis.witness v.Analysis.witness
        && fv.Analysis.exactness = Analysis.Exact)

(* probe_family only answers from the in-process cache, and when it
   does it must replay the cached verdict exactly. *)
let test_probe_family () =
  Engine.Cache.clear ();
  let t = mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let mu = [| 5; 2; 3 |] in
  let v = Analysis.check ~mu t in
  (match Analysis.probe_family ~mu t with
  | None -> Alcotest.fail "family must be cached after check"
  | Some fv ->
    Alcotest.(check bool) "conflict_free" v.Analysis.conflict_free
      fv.Analysis.conflict_free;
    Alcotest.(check string) "decided_by"
      (Analysis.decided_by_name v.Analysis.decided_by)
      (Analysis.decided_by_name fv.Analysis.decided_by));
  Alcotest.(check bool) "exactness is exact"
    true
    (v.Analysis.exactness = Analysis.Exact)

let suite =
  [
    Alcotest.test_case "adjugate boundary |gamma_i| = mu_i" `Quick
      test_adjugate_boundary;
    Alcotest.test_case "adjugate sweep agrees with oracle" `Quick
      test_adjugate_sweep_vs_oracle;
    Alcotest.test_case "square full rank is const-free" `Quick test_const_free;
    Alcotest.test_case "rank deficient is always residual" `Quick
      test_rank_deficient_residual;
    Alcotest.test_case "cascade trapped kernel column" `Quick
      test_cascade_trapped_column;
    Alcotest.test_case "cascade boundary, both arms" `Quick
      test_cascade_boundary_both_arms;
    Alcotest.test_case "cond4 subset cap drops sufficient arm" `Quick
      test_cond4_cap_drops_sufficient;
    Alcotest.test_case "codec rejects malformed strings" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "probe_family replays the cached verdict" `Quick
      test_probe_family;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_family_sound_vs_oracle;
    QCheck_alcotest.to_alcotest prop_family_matches_check;
  ]
