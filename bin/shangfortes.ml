(* Command-line front end for the Shang-Fortes mapping machinery.

   $ shangfortes hnf -m "1,7,1,1;1,7,1,0"
   $ shangfortes analyze -m "1,1,-1;1,4,1" --mu 4,4,4
   $ shangfortes optimize --algorithm matmul --mu 4 -s "1,1,-1"
   $ shangfortes simulate --algorithm tc --mu 4 -s "0,0,1" --pi 5,1,1
   $ shangfortes search --algorithm matmul --mu 4 --array-dim 1 --jobs 4

   Every subcommand accepts --format json for versioned
   machine-consumable output (schema v2), --trace[=FILE] for a Chrome
   trace_event dump of the run, and --metrics for the observability
   counters; plain text is the default.  The contract lives in
   docs/SCHEMA.md. *)

open Cmdliner

let parse_vector s =
  try List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' s)
  with Failure _ -> failwith ("cannot parse vector: " ^ s)

let parse_matrix s =
  let rows = List.map parse_vector (String.split_on_char ';' s) in
  Intmat.of_ints rows

(* ------------------------- shared: output format ------------------- *)

type output_format = Plain | Json_v2

let format_arg =
  Arg.(
    value
    & opt (enum [ ("plain", Plain); ("json", Json_v2) ]) Plain
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: plain (default) or json (versioned, schema_version 2).")

let json_of_vec v = Json.ints (Intvec.to_ints v)
let json_of_mat m = Json.Arr (List.map Json.ints (Intmat.to_ints m))
let json_of_int_array a = Json.ints (Array.to_list a)

(* --------------------- shared: observability ----------------------- *)

type obs_opts = { trace_out : string option; show_metrics : bool }

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt ~vopt:(Some "trace.json") (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Collect hierarchical trace spans for the run and write them as Chrome \
             trace_event JSON to $(docv) (default trace.json; load in chrome://tracing \
             or Perfetto).  With --format json the span tree is also embedded in the \
             report as the 'spans' field.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Report the observability counters/gauges/histograms: as a 'metrics' field \
             with --format json, as a trailing block on stderr otherwise.")
  in
  Term.(
    const (fun trace_out show_metrics -> { trace_out; show_metrics })
    $ trace_arg $ metrics_arg)

let obs_begin o =
  Obs.Metrics.reset ();
  if o.trace_out <> None then Obs.Trace.enable ()

(* Append the requested observability fields to a JSON report (the
   search command always carries "metrics"; don't duplicate it). *)
let obs_fields o fields =
  let fields =
    if o.show_metrics && not (List.mem_assoc "metrics" fields) then
      fields @ [ ("metrics", Obs.Export.metrics (Obs.Metrics.snapshot ())) ]
    else fields
  in
  if o.trace_out <> None then
    fields @ [ ("spans", Obs.Export.span_tree (Obs.Trace.spans ())) ]
  else fields

let obs_end o fmt =
  (match o.trace_out with
  | None -> ()
  | Some path ->
    Obs.Trace.disable ();
    Obs.Export.write_file path (Obs.Export.chrome_trace (Obs.Trace.spans ()));
    let dropped = Obs.Trace.dropped () in
    if dropped > 0 then
      Printf.eprintf "trace: %d span(s) dropped (capacity %d)\n%!" dropped
        Obs.Trace.capacity;
    Printf.eprintf "trace written to %s\n%!" path);
  if o.show_metrics && fmt = Plain then
    Format.eprintf "metrics:@,@[<v 2>  %a@]@." Obs.Metrics.pp (Obs.Metrics.snapshot ())

(* ------------------------------- hnf ------------------------------- *)

let hnf_cmd =
  let matrix =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "matrix" ] ~docv:"ROWS" ~doc:"Matrix, rows separated by ';'.")
  in
  let run m fmt obs =
    obs_begin obs;
    let t = parse_matrix m in
    let res = Hnf.compute t in
    let basis = Hnf.kernel_basis t in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"hnf"
           (obs_fields obs
              [
                ("t", json_of_mat t);
                ("h", json_of_mat res.Hnf.h);
                ("u", json_of_mat res.Hnf.u);
                ("v", json_of_mat res.Hnf.v);
                ("rank", Json.Int res.Hnf.rank);
                ("verified", Json.Bool (Hnf.verify t res));
                ("kernel_basis", Json.Arr (List.map json_of_vec basis));
              ]))
    | Plain ->
      Printf.printf "T =\n%s\nH = T U =\n%s\nU =\n%s\nV = U^-1 =\n%s\nrank = %d\nverified: %b\n"
        (Intmat.to_string t) (Intmat.to_string res.Hnf.h) (Intmat.to_string res.Hnf.u)
        (Intmat.to_string res.Hnf.v) res.Hnf.rank (Hnf.verify t res);
      (match basis with
      | [] -> print_endline "kernel: trivial"
      | basis ->
        print_endline "kernel basis (conflict-vector generators):";
        List.iter (fun g -> Printf.printf "  %s\n" (Intvec.to_string g)) basis));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "hnf" ~doc:"Hermite normal form with multiplier U and V = U^-1 (Theorem 4.1)")
    Term.(const run $ matrix $ format_arg $ obs_term)

(* ----------------------------- analyze ----------------------------- *)

let mu_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "mu" ] ~docv:"MU" ~doc:"Index-set upper bounds, comma separated.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-query wall-clock budget; past it the engine degrades to the lattice oracle \
           and reports verdicts as bounded.")

(* The historical human-readable method names, extended with the
   engine's lattice paths. *)
let decided_by_pretty = function
  | Analysis.Theorem Theorems.Full_rank_square -> "square full-rank test"
  | Analysis.Theorem Theorems.Adjugate_form -> "Theorem 3.1 (adjugate closed form)"
  | Analysis.Theorem Theorems.Column_infeasible ->
    "Theorem 4.4 (a kernel column fits in the box)"
  | Analysis.Theorem Theorems.Hermite_n_minus_2 -> "Theorem 4.7 (sufficient)"
  | Analysis.Theorem Theorems.Hermite_n_minus_3 -> "corrected Theorem 4.8 (sufficient)"
  | Analysis.Theorem Theorems.Gcd_sufficient -> "Theorem 4.5 (gcd, sufficient)"
  | Analysis.Theorem Theorems.Box_oracle -> "exact box oracle"
  | Analysis.Lattice_oracle -> "exact lattice oracle (LLL)"
  | Analysis.Lattice_fallback -> "lattice oracle (budget fallback)"

let analyze_cmd =
  let matrix =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "matrix" ] ~docv:"ROWS"
          ~doc:"Mapping matrix T = [S; Pi], rows separated by ';' (last row is Pi).")
  in
  let run m mu_s deadline_ms fmt obs =
    obs_begin obs;
    let t = parse_matrix m in
    let mu = Array.of_list (parse_vector mu_s) in
    if Array.length mu <> Intmat.cols t then failwith "mu arity does not match T";
    let k = Intmat.rows t and n = Intmat.cols t in
    let budget = Engine.Budget.make ?deadline_ms () in
    let verdict = Analysis.check ~budget ~mu t in
    let generators =
      List.map
        (fun g -> (g, Conflict.is_feasible ~mu g))
        (Conflict.kernel_basis t)
    in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"analyze"
           (obs_fields obs
           [
             ("t", json_of_mat t);
             ("mu", json_of_int_array mu);
             ("rank", Json.Int (Intmat.rank t));
             ("full_rank", Json.Bool verdict.Analysis.full_rank);
             ("conflict_free", Json.Bool verdict.Analysis.conflict_free);
             ("decided_by", Json.Str (Analysis.decided_by_name verdict.Analysis.decided_by));
             ( "exactness",
               Json.Str
                 (match verdict.Analysis.exactness with
                 | Analysis.Exact -> "exact"
                 | Analysis.Bounded -> "bounded") );
             ("witness", Json.option json_of_vec verdict.Analysis.witness);
             ("timing_ms", Json.Float (1000. *. verdict.Analysis.timing));
             ( "generators",
               Json.Arr
                 (List.map
                    (fun (g, feasible) ->
                      Json.Obj
                        [ ("vector", json_of_vec g); ("feasible", Json.Bool feasible) ])
                    generators) );
           ]))
    | Plain ->
      Printf.printf "T (%dx%d) =\n%s\nrank = %d (need %d for a (k-1)-dimensional array)\n"
        k n (Intmat.to_string t) (Intmat.rank t) k;
      Printf.printf "conflict-free on J = [0,mu]: %b   [decided by %s]\n"
        verdict.Analysis.conflict_free (decided_by_pretty verdict.Analysis.decided_by);
      (match verdict.Analysis.exactness with
      | Analysis.Exact -> ()
      | Analysis.Bounded ->
        print_endline "verdict is budget-bounded (deadline hit; lattice oracle used)");
      (match verdict.Analysis.witness with
      | Some g -> Printf.printf "witness conflict vector: %s\n" (Intvec.to_string g)
      | None -> ());
      (match generators with
      | [] -> ()
      | generators ->
        print_endline "conflict-vector generators:";
        List.iter
          (fun (g, feasible) ->
            Printf.printf "  %s  (feasible: %b)\n" (Intvec.to_string g) feasible)
          generators));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Conflict analysis of a mapping matrix (Theorems 2.2, 3.1, 4.3-4.8)")
    Term.(const run $ matrix $ mu_arg $ deadline_arg $ format_arg $ obs_term)

(* ------------------------------ family ----------------------------- *)

(* JSON and text renderings of the piecewise mu-condition; the grammar
   and this schema are documented in docs/FAMILIES.md.  Atom constants
   are emitted as strings — they are exact integers that can exceed a
   JSON consumer's native range. *)
let rec json_of_cond = function
  | Family.True -> Json.Obj [ ("op", Json.Str "true") ]
  | Family.False -> Json.Obj [ ("op", Json.Str "false") ]
  | Family.Lt (i, c) ->
    Json.Obj
      [ ("op", Json.Str "lt"); ("i", Json.Int i); ("c", Json.Str (Zint.to_string c)) ]
  | Family.All cs ->
    Json.Obj [ ("op", Json.Str "all"); ("args", Json.Arr (List.map json_of_cond cs)) ]
  | Family.Any cs ->
    Json.Obj [ ("op", Json.Str "any"); ("args", Json.Arr (List.map json_of_cond cs)) ]

let rec cond_to_text = function
  | Family.True -> "true"
  | Family.False -> "false"
  | Family.Lt (i, c) -> Printf.sprintf "mu_%d < %s" i (Zint.to_string c)
  | Family.All cs -> "(" ^ String.concat " and " (List.map cond_to_text cs) ^ ")"
  | Family.Any cs -> "(" ^ String.concat " or " (List.map cond_to_text cs) ^ ")"

let json_of_shape = function
  | Family.Const_free -> Json.Obj [ ("kind", Json.Str "const-free") ]
  | Family.Always_residual -> Json.Obj [ ("kind", Json.Str "residual") ]
  | Family.Adjugate gamma ->
    Json.Obj
      [
        ("kind", Json.Str "adjugate");
        ("gamma", json_of_vec gamma);
        ("free_iff", json_of_cond (Family.escape_cond gamma));
      ]
  | Family.Cascade { kernel; sufficient } ->
    Json.Obj
      [
        ("kind", Json.Str "cascade");
        ("kernel", Json.Arr (List.map json_of_vec kernel));
        ( "sufficient",
          match sufficient with
          | None -> Json.Null
          | Some (m, c) ->
            Json.Obj
              [
                ("method", Json.Str (Family.method_name m));
                ("cond", json_of_cond c);
              ] );
      ]

let family_cmd =
  let matrix =
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "matrix" ] ~docv:"ROWS"
          ~doc:"Mapping matrix T = [S; Pi], rows separated by ';' (last row is Pi).")
  in
  let mu_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mu" ] ~docv:"MU"
          ~doc:
            "Optional instance bounds: also evaluate the family verdict at this mu and \
             report the decided (or residual) outcome.")
  in
  let run m mu_s fmt obs =
    obs_begin obs;
    let t = parse_matrix m in
    let fam = Analysis.family t in
    let mu =
      Option.map
        (fun s ->
          let mu = Array.of_list (parse_vector s) in
          if Array.length mu <> Intmat.cols t then failwith "mu arity does not match T";
          mu)
        mu_s
    in
    let evaluation = Option.map (fun mu -> (mu, Family.eval fam ~mu)) mu in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"family"
           (obs_fields obs
              ([
                 ("t", json_of_mat t);
                 ("k", Json.Int fam.Family.k);
                 ("n", Json.Int fam.Family.n);
                 ("full_rank", Json.Bool fam.Family.full_rank);
                 ("shape", Json.Str (Family.shape_name fam));
                 ("family", Json.Str (Family.to_string fam));
                 ("condition", json_of_shape fam.Family.shape);
               ]
               @
               match evaluation with
               | None -> []
               | Some (mu, ev) ->
                 [
                   ("mu", json_of_int_array mu);
                   ( "eval",
                     match ev with
                     | Family.Residual ->
                       Json.Obj [ ("decided", Json.Bool false) ]
                     | Family.Decided { conflict_free; method_; witness } ->
                       Json.Obj
                         [
                           ("decided", Json.Bool true);
                           ("conflict_free", Json.Bool conflict_free);
                           ("decided_by", Json.Str (Family.method_name method_));
                           ("witness", Json.option json_of_vec witness);
                         ] );
                 ])))
    | Plain ->
      Printf.printf "T (%dx%d) =\n%s\nfamily shape: %s   (full rank: %b)\n"
        fam.Family.k fam.Family.n (Intmat.to_string t) (Family.shape_name fam)
        fam.Family.full_rank;
      (match fam.Family.shape with
      | Family.Const_free -> print_endline "conflict-free for every mu"
      | Family.Always_residual ->
        print_endline "no closed form applies; every instance needs concrete analysis"
      | Family.Adjugate gamma ->
        Printf.printf "unique conflict vector gamma = %s\nfree iff %s\n"
          (Intvec.to_string gamma)
          (cond_to_text (Family.escape_cond gamma))
      | Family.Cascade { kernel; sufficient } ->
        print_endline "kernel columns (conflict iff one fits the box):";
        List.iter (fun w -> Printf.printf "  %s\n" (Intvec.to_string w)) kernel;
        (match sufficient with
        | None ->
          print_endline "sufficient arm: none (subset cap); survivors are residual"
        | Some (m, c) ->
          Printf.printf "sufficient (%s): %s\n" (Family.method_name m) (cond_to_text c)));
      Printf.printf "codec: %s\n" (Family.to_string fam);
      match evaluation with
      | None -> ()
      | Some (mu, ev) -> (
        Printf.printf "at mu = %s: "
          (String.concat "," (List.map string_of_int (Array.to_list mu)));
        match ev with
        | Family.Residual -> print_endline "residual (falls back to concrete analysis)"
        | Family.Decided { conflict_free; method_; witness } ->
          Printf.printf "conflict-free = %b   [decided by %s]\n" conflict_free
            (Family.method_name method_);
          Option.iter
            (fun w -> Printf.printf "witness conflict vector: %s\n" (Intvec.to_string w))
            witness));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "family"
       ~doc:
         "Symbolic mu-parametric conflict analysis: the piecewise family verdict of a \
          mapping matrix (docs/FAMILIES.md)")
    Term.(const run $ matrix $ mu_opt_arg $ format_arg $ obs_term)

(* ------------------------- shared: algorithms ---------------------- *)

(* The resolution lives in [Server.Handlers] so the daemon serves the
   same catalogue; the CLI keeps its historical [Failure] errors. *)
let builtin_algorithm name mu =
  try Server.Handlers.builtin_algorithm name mu
  with Server.Handlers.Bad_request msg -> failwith msg

let algorithm_arg =
  Arg.(
    value
    & opt string "matmul"
    & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"matmul, tc, convolution, bitmm or lu.")

let mu_int_arg =
  Arg.(value & opt int 4 & info [ "mu" ] ~docv:"N" ~doc:"Problem size (loop upper bound).")

let s_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "space" ] ~docv:"ROWS"
        ~doc:"Space mapping S, rows separated by ';' (default: the paper's choice).")

let resolve_s s_opt default_s =
  match (s_opt, default_s) with
  | Some s, _ -> parse_matrix s
  | None, Some s -> s
  | None, None -> failwith "no default space mapping; pass -s"

(* ----------------------------- optimize ---------------------------- *)

let json_of_routing (rt : Tmap.routing) =
  Json.Obj
    [
      ("hops", json_of_int_array rt.Tmap.hops);
      ("buffers", json_of_int_array rt.Tmap.buffers);
    ]

let optimize_cmd =
  let method_arg =
    Arg.(
      value
      & opt string "p51"
      & info [ "method" ] ~docv:"M" ~doc:"p51 (Procedure 5.1) or ilp (formulation (5.1)-(5.2)).")
  in
  let routing_arg =
    Arg.(value & flag & info [ "routing" ] ~doc:"Require SD = PK routing on nearest-neighbor links.")
  in
  let bound_arg =
    Arg.(value & opt (some int) None & info [ "max-objective" ] ~docv:"N" ~doc:"Search bound.")
  in
  let run name mu s_opt method_ routing bound fmt obs =
    obs_begin obs;
    let alg, default_s = builtin_algorithm name mu in
    let s = resolve_s s_opt default_s in
    let base_fields =
      [
        ("algorithm", Json.Str name);
        ("mu", Json.Int mu);
        ("s", json_of_mat s);
        ("method", Json.Str method_);
      ]
    in
    let emit fields =
      Json.print (Json.versioned ~command:"optimize" (obs_fields obs fields))
    in
    (match method_ with
    | "p51" ->
      (match Procedure51.optimize ~require_routing:routing ?max_objective:bound alg ~s with
      | Some r ->
        (match fmt with
        | Json_v2 ->
          emit
            (base_fields
            @ [
                ("pi", json_of_vec r.Procedure51.pi);
                ("total_time", Json.Int r.Procedure51.total_time);
                ("candidates_tried", Json.Int r.Procedure51.candidates_tried);
                ("routing", Json.option json_of_routing r.Procedure51.routing);
              ])
        | Plain ->
          Printf.printf "Pi = %s\ntotal time = %d\ncandidates tried = %d\n"
            (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time
            r.Procedure51.candidates_tried;
          (match r.Procedure51.routing with
          | Some rt ->
            Printf.printf "hops = (%s)  buffers = (%s)\n"
              (String.concat "," (Array.to_list (Array.map string_of_int rt.Tmap.hops)))
              (String.concat "," (Array.to_list (Array.map string_of_int rt.Tmap.buffers)))
          | None -> ()))
      | None ->
        (match fmt with
        | Json_v2 -> emit (base_fields @ [ ("pi", Json.Null) ])
        | Plain -> print_endline "no conflict-free schedule within the search bound"))
    | "ilp" ->
      (match Ilp_form.optimize alg ~s with
      | Some sol ->
        (match fmt with
        | Json_v2 ->
          emit
            (base_fields
            @ [
                ("pi", json_of_vec sol.Ilp_form.pi);
                ("total_time", Json.Int (sol.Ilp_form.objective + 1));
                ("branch", Json.Str sol.Ilp_form.branch);
                ("gamma", json_of_vec sol.Ilp_form.gamma);
              ])
        | Plain ->
          Printf.printf "Pi = %s\ntotal time = %d\nbinding branch: %s\ngamma = %s\n"
            (Intvec.to_string sol.Ilp_form.pi)
            (sol.Ilp_form.objective + 1)
            sol.Ilp_form.branch
            (Intvec.to_string sol.Ilp_form.gamma))
      | None ->
        (match fmt with
        | Json_v2 -> emit (base_fields @ [ ("pi", Json.Null) ])
        | Plain -> print_endline "no solution"))
    | other -> failwith ("unknown method: " ^ other));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Find the time-optimal conflict-free schedule (Problem 2.2)")
    Term.(
      const run $ algorithm_arg $ mu_int_arg $ s_arg $ method_arg $ routing_arg $ bound_arg
      $ format_arg $ obs_term)

(* ----------------------------- simulate ---------------------------- *)

let simulate_cmd =
  let pi_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "pi" ] ~docv:"PI" ~doc:"Linear schedule vector, comma separated.")
  in
  (* --table was called --trace before 1.2.0; the old name now selects
     span tracing, uniformly with every other subcommand. *)
  let table_arg =
    Arg.(value & flag & info [ "table" ] ~doc:"Print the execution table.")
  in
  let run name mu s_opt pi_s table fmt obs =
    obs_begin obs;
    let alg, default_s = builtin_algorithm name mu in
    let s = resolve_s s_opt default_s in
    let pi = Intvec.of_ints (parse_vector pi_s) in
    let tm = Tmap.make ~s ~pi in
    let r = Exec.run alg Dataflow.semantics tm in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"simulate"
           (obs_fields obs
           [
             ("algorithm", Json.Str name);
             ("mu", Json.Int mu);
             ("s", json_of_mat s);
             ("pi", json_of_vec pi);
             ("makespan", Json.Int r.Exec.makespan);
             ("processors", Json.Int r.Exec.num_processors);
             ("computations", Json.Int r.Exec.computations);
             ("conflicts", Json.Int (List.length r.Exec.conflicts));
             ("causality_violations", Json.Int (List.length r.Exec.causality_violations));
             ("link_collisions", Json.Int (List.length r.Exec.collisions));
             ("buffers", json_of_int_array r.Exec.max_buffer_occupancy);
             ("dataflow_correct", Json.Bool (Exec.values_agree r));
             ("verification", Json.Str (Exec.verification_name r.Exec.verified));
             ("utilization", Json.Float r.Exec.utilization);
           ]))
    | Plain ->
      Printf.printf
        "makespan = %d\nprocessors = %d\ncomputations = %d\nconflicts = %d\n\
         causality violations = %d\nlink collisions = %d\nbuffers = (%s)\n\
         verification = %s\nutilization = %.3f\n"
        r.Exec.makespan r.Exec.num_processors r.Exec.computations
        (List.length r.Exec.conflicts)
        (List.length r.Exec.causality_violations)
        (List.length r.Exec.collisions)
        (String.concat "," (Array.to_list (Array.map string_of_int r.Exec.max_buffer_occupancy)))
        (Exec.verification_name r.Exec.verified)
        r.Exec.utilization;
      List.iter
        (fun c ->
          Printf.printf "conflict at t=%d pe=(%s): %d points\n" c.Exec.time
            (String.concat "," (Array.to_list (Array.map string_of_int c.Exec.pe)))
            (List.length c.Exec.points))
        r.Exec.conflicts;
      if table then
        if Tmap.k tm = 2 then print_string (Trace.linear_array_table alg tm)
        else print_string (Trace.firing_list alg tm));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Cycle-accurate simulation of an algorithm under a mapping")
    Term.(
      const run $ algorithm_arg $ mu_int_arg $ s_arg $ pi_arg $ table_arg $ format_arg
      $ obs_term)

(* ------------------------------- exec ------------------------------ *)

let exec_cmd =
  let exec_algorithm_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "algorithm" ] ~docv:"NAME"
          ~doc:"Case study to execute: matmul, tc, or all (default).")
  in
  let scenario_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "scenario" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated scenario names from the default matrix (e.g. \
             matmul-8,tc-8-alt), or all (default).")
  in
  let dtype_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "dtype" ] ~docv:"NAMES"
          ~doc:"Comma-separated dtypes: int, int32, float, or all (default).")
  in
  let exec_mu_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mu" ] ~docv:"N,..."
          ~doc:
            "Build the scenario list from these sizes (optimal schedules) instead of \
             the default matrix.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: the runtime's recommended domain count).")
  in
  let block_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block" ] ~docv:"N"
          ~doc:"Points of one wavefront executed per domain task (default 256).")
  in
  let sim_limit_arg =
    Arg.(
      value
      & opt int 8192
      & info [ "sim-limit" ] ~docv:"N"
          ~doc:
            "Largest cell count still cross-checked against the cycle-accurate \
             simulator (0 disables the cross-check).")
  in
  let run algorithm scenarios dtype mu_s jobs block sim_limit fmt obs =
    obs_begin obs;
    let algorithms =
      match algorithm with
      | "all" -> [ "matmul"; "tc" ]
      | ("matmul" | "tc") as a -> [ a ]
      | other -> failwith ("unknown algorithm " ^ other ^ " (matmul, tc, all)")
    in
    let specs =
      match mu_s with
      | Some s ->
        List.concat_map
          (fun a -> List.map (fun mu -> Scenario.scenario a ~mu) (parse_vector s))
          algorithms
      | None ->
        List.filter
          (fun (sp : Scenario.spec) -> List.mem sp.Scenario.algorithm algorithms)
          Scenario.default_scenarios
    in
    let specs =
      match scenarios with
      | "all" -> specs
      | names ->
        let names = String.split_on_char ',' names in
        let picked =
          List.filter (fun (sp : Scenario.spec) -> List.mem sp.Scenario.name names) specs
        in
        if picked = [] then failwith ("no scenario matches " ^ scenarios);
        picked
    in
    let dtypes =
      match dtype with
      | "all" -> Scenario.types
      | names ->
        List.map
          (fun n ->
            match Scenario.type_by_name (String.trim n) with
            | Some t -> t
            | None -> failwith ("unknown dtype " ^ n ^ " (int, int32, float)"))
          (String.split_on_char ',' names)
    in
    let pool = Engine.Pool.create ?jobs () in
    let cells = Scenario.run_matrix ~pool ?block ~sim_limit specs dtypes in
    let all_ok = List.for_all Scenario.cell_ok cells in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"exec"
           (obs_fields obs
              [
                ("jobs", Json.Int (Engine.Pool.jobs pool));
                ("sim_limit", Json.Int sim_limit);
                ("cells", Json.Arr (List.map Scenario.json_of_cell cells));
                ("all_verified", Json.Bool all_ok);
              ]))
    | Plain ->
      Printf.printf "%-14s %-6s %9s %6s %8s %6s %11s %6s %s\n" "scenario" "dtype"
        "cells" "PEs" "cycles" "util" "GFLOP/s" "check" "sim";
      List.iter
        (fun (c : Scenario.cell) ->
          Printf.printf "%-14s %-6s %9d %6d %8d %5.3f %11.4f %6s %s\n"
            c.Scenario.spec.Scenario.name c.Scenario.dtype c.Scenario.cells
            c.Scenario.processors c.Scenario.makespan c.Scenario.utilization
            c.Scenario.gflops
            (if c.Scenario.verified then "ok"
             else Printf.sprintf "%d!" c.Scenario.mismatches)
            (match c.Scenario.sim with
            | None -> "-"
            | Some s ->
              if s.Scenario.sim_clean && s.Scenario.makespan_agrees then "agrees"
              else "DISAGREES"))
        cells;
      Printf.printf "%d cells, %d domains: %s\n" (List.length cells)
        (Engine.Pool.jobs pool)
        (if all_ok then "all verified" else "VERIFICATION FAILED"));
    obs_end obs fmt;
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Execute the paper's case studies through the compiled multicore kernel over \
          the SCENARIOS x TYPES matrix, verifying every cell against the reference \
          evaluator (docs/EXECUTOR.md)")
    Term.(
      const run $ exec_algorithm_arg $ scenario_arg $ dtype_arg $ exec_mu_arg
      $ jobs_arg $ block_arg $ sim_limit_arg $ format_arg $ obs_term)

(* ------------------------------ parse ------------------------------ *)

let parse_cmd =
  let src_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOURCE"
          ~doc:"Loop nest, e.g. 'for i = 0..4, j = 0..4, k = 0..4 { C[i,j] = C[i,j] + A[i,k]*B[k,j] }'.")
  in
  let optimize_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "optimize" ] ~docv:"S"
          ~doc:"Also find the time-optimal schedule for this space mapping (rows ';'-separated).")
  in
  let space_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "array-dim" ] ~docv:"K"
          ~doc:"Also search the cheapest conflict-free K-dimensional array (Problem 6.1).")
  in
  let run src opt_s array_dim fmt obs =
    obs_begin obs;
    match Loopnest.parse_result src with
    | Error e ->
      (match fmt with
      | Json_v2 ->
        Json.print
          (Json.versioned ~command:"parse" [ ("error", Json.Str (Loopnest.error_to_string e)) ])
      | Plain -> prerr_endline (Loopnest.error_to_string e));
      exit 1
    | Ok a ->
      let alg = a.Loopnest.algorithm in
      let opt_result =
        Option.map
          (fun s ->
            let s = parse_matrix s in
            (s, Procedure51.optimize alg ~s))
          opt_s
      in
      let pi_found =
        match opt_result with
        | Some (_, Some r) -> Some r.Procedure51.pi
        | _ -> None
      in
      let space_result =
        Option.map
          (fun dim ->
            let pi =
              match pi_found with
              | Some pi -> pi
              | None -> (
                (* Use the cost-minimal free schedule as Problem 6.1's
                   given Pi. *)
                match Procedure51.minimal_schedule alg with
                | Some pi -> pi
                | None -> failwith "no valid schedule exists")
            in
            (pi, Space_opt.optimize alg ~pi ~k:(dim + 1)))
          array_dim
      in
      (match fmt with
      | Json_v2 ->
        let mu = Index_set.bounds alg.Algorithm.index_set in
        Json.print
          (Json.versioned ~command:"parse"
             (obs_fields obs
             [
               ("name", Json.Str alg.Algorithm.name);
               ("loop_vars", Json.Arr (List.map (fun v -> Json.Str v) a.Loopnest.loop_vars));
               ("mu", json_of_int_array mu);
               ("dependences", json_of_mat alg.Algorithm.dependences);
               ( "dependence_origin",
                 Json.Arr
                   (List.map
                      (fun (d, why) ->
                        Json.Obj [ ("d", json_of_vec d); ("why", Json.Str why) ])
                      a.Loopnest.dependence_origin) );
               ( "optimize",
                 Json.option
                   (fun (s, r) ->
                     Json.Obj
                       [
                         ("s", json_of_mat s);
                         ( "pi",
                           Json.option (fun r -> json_of_vec r.Procedure51.pi) r );
                         ( "total_time",
                           Json.option (fun r -> Json.Int r.Procedure51.total_time) r );
                       ])
                   opt_result );
               ( "space",
                 Json.option
                   (fun (pi, r) ->
                     Json.Obj
                       [
                         ("pi", json_of_vec pi);
                         ("s", Json.option (fun r -> json_of_mat r.Space_opt.s) r);
                         ( "processors",
                           Json.option (fun r -> Json.Int r.Space_opt.processors) r );
                         ( "wire_length",
                           Json.option (fun r -> Json.Int r.Space_opt.wire_length) r );
                       ])
                   space_result );
             ]))
      | Plain ->
        Format.printf "%a@." Loopnest.pp_analysis a;
        (match opt_result with
        | None -> ()
        | Some (_, Some r) ->
          Printf.printf "optimal Pi = %s, total time = %d\n"
            (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time
        | Some (_, None) -> print_endline "no conflict-free schedule found");
        (match space_result with
        | None -> ()
        | Some (_, Some r) ->
          Printf.printf "space-optimal S =\n%s\nprocessors = %d, wire length = %d\n"
            (Intmat.to_string r.Space_opt.s) r.Space_opt.processors r.Space_opt.wire_length
        | Some (_, None) ->
          print_endline "no conflict-free space mapping in the searched family"));
      obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Extract (J, D) from a nested-loop program; optionally optimize and place it")
    Term.(const run $ src_arg $ optimize_arg $ space_arg $ format_arg $ obs_term)

(* ------------------------------ pareto ------------------------------ *)

let dim_arg =
  Arg.(value & opt int 1 & info [ "array-dim" ] ~docv:"K" ~doc:"Array dimension (default 1).")

let collision_free_arg =
  Arg.(
    value & flag
    & info [ "collision-free" ]
        ~doc:"Also require link-collision freedom ([23]'s stricter model).")

let collision_accept alg collision_free pi s =
  (not collision_free)
  ||
  let tm = Tmap.make ~s ~pi in
  match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
  | Some routing -> Linkcheck.predict alg tm routing = []
  | None -> false

let json_of_pareto_point (p : Enumerate.pareto_point) =
  Json.Obj
    [
      ("total_time", Json.Int p.Enumerate.total_time);
      ("processors", Json.Int p.Enumerate.processors);
      ("pi", json_of_vec p.Enumerate.pi);
      ("s", json_of_mat p.Enumerate.s);
    ]

let pareto_cmd =
  let run name mu dim collision_free fmt obs =
    obs_begin obs;
    let alg, _ = builtin_algorithm name mu in
    let front =
      Enumerate.pareto_front ~accept:(collision_accept alg collision_free) alg ~k:(dim + 1)
    in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"pareto"
           (obs_fields obs
              [
                ("algorithm", Json.Str name);
                ("mu", Json.Int mu);
                ("array_dim", Json.Int dim);
                ("collision_free", Json.Bool collision_free);
                ("points", Json.Arr (List.map json_of_pareto_point front));
              ]))
    | Plain ->
      if front = [] then print_endline "no achievable points found"
      else
        List.iter
          (fun p ->
            Printf.printf "t = %-4d PEs = %-4d Pi = %-12s S = %s\n" p.Enumerate.total_time
              p.Enumerate.processors
              (Intvec.to_string p.Enumerate.pi)
              (Intmat.to_string p.Enumerate.s))
          front);
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Achievable (total time, processors) trade-off (Problems 2.1/6.2)")
    Term.(
      const run $ algorithm_arg $ mu_int_arg $ dim_arg $ collision_free_arg $ format_arg
      $ obs_term)

(* ------------------------------ search ------------------------------ *)

let search_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: the runtime's recommended domain count).")
  in
  let slack_arg =
    Arg.(
      value
      & opt int 8
      & info [ "time-slack" ] ~docv:"L"
          ~doc:"Extra total-time levels explored past the joint optimum (pareto mode).")
  in
  let pareto_arg =
    Arg.(
      value & flag
      & info [ "pareto" ]
          ~doc:"Pareto mode: scan the unit space-mapping family for the time/processor \
                front ($(b,--array-dim) sets the dimension).  Default mode enumerates all \
                time-optimal schedules for the space mapping $(b,-s).")
  in
  let run name mu s_opt dim pareto_mode collision_free jobs deadline_ms slack fmt obs =
    obs_begin obs;
    let alg, default_s = builtin_algorithm name mu in
    let pool = Engine.Pool.create ?jobs () in
    let budget = Engine.Budget.make ?deadline_ms () in
    (* Ctrl-C cancels the budget instead of killing the process: the
       scan winds down on the bounded path and the partial report
       still goes out with "interrupted": true — the same mechanism
       the server uses to drain in-flight requests. *)
    let previous_sigint =
      Sys.signal Sys.sigint
        (Sys.Signal_handle (fun _ -> Engine.Budget.cancel budget))
    in
    let restore_sigint () = Sys.set_signal Sys.sigint previous_sigint in
    let base_fields =
      [
        ("algorithm", Json.Str name);
        ("mu", Json.Int mu);
        ("jobs", Json.Int (Engine.Pool.jobs pool));
        ("deadline_ms", Json.option (fun ms -> Json.Int ms) deadline_ms);
      ]
    in
    (* v2: the v1 "telemetry" blob is gone; search always reports the
       engine's metrics registry (docs/SCHEMA.md). *)
    let finish fields plain =
      let snap = Obs.Metrics.snapshot () in
      match fmt with
      | Json_v2 ->
        Json.print
          (Json.versioned ~command:"search"
             (obs_fields obs
                (base_fields
                @ fields
                @ [
                    ("metrics", Obs.Export.metrics snap);
                    ("budget_elapsed_ms", Json.Float (Engine.Budget.elapsed_ms budget));
                    ("budget_pressed", Json.Bool (Engine.Budget.pressed budget));
                    ("interrupted", Json.Bool (Engine.Budget.cancelled budget));
                  ])))
      | Plain ->
        plain ();
        Format.printf "metrics:@,@[<v 2>  %a@]@." Obs.Metrics.pp snap
    in
    if pareto_mode then begin
      let front =
        Search.pareto_front ~pool ~budget ~time_slack:slack
          ~accept:(collision_accept alg collision_free) alg ~k:(dim + 1)
      in
      finish
        [
          ("mode", Json.Str "pareto");
          ("array_dim", Json.Int dim);
          ("collision_free", Json.Bool collision_free);
          ("points", Json.Arr (List.map json_of_pareto_point front));
        ]
        (fun () ->
          if front = [] then print_endline "no achievable points found"
          else
            List.iter
              (fun p ->
                Printf.printf "t = %-4d PEs = %-4d Pi = %-12s S = %s\n" p.Enumerate.total_time
                  p.Enumerate.processors
                  (Intvec.to_string p.Enumerate.pi)
                  (Intmat.to_string p.Enumerate.s))
              front)
    end
    else begin
      let s = resolve_s s_opt default_s in
      let schedules = Search.all_optimal_schedules ~pool ~budget alg ~s in
      let best = Search.best_by_buffers ~pool ~budget alg ~s in
      finish
        [
          ("mode", Json.Str "schedules");
          ("s", json_of_mat s);
          ("schedules", Json.Arr (List.map json_of_vec schedules));
          ( "best_by_buffers",
            Json.option
              (fun (pi, rt) ->
                Json.Obj
                  [
                    ("pi", json_of_vec pi);
                    ("registers", Json.Int (Array.fold_left ( + ) 0 rt.Tmap.buffers));
                    ("routing", json_of_routing rt);
                  ])
              best );
        ]
        (fun () ->
          (match schedules with
          | [] -> print_endline "no conflict-free schedule found"
          | schedules ->
            Printf.printf "%d time-optimal conflict-free schedule(s):\n"
              (List.length schedules);
            List.iter (fun pi -> Printf.printf "  Pi = %s\n" (Intvec.to_string pi)) schedules);
          match best with
          | Some (pi, rt) ->
            Printf.printf "buffer-minimal: Pi = %s (%d registers)\n" (Intvec.to_string pi)
              (Array.fold_left ( + ) 0 rt.Tmap.buffers)
          | None -> ())
    end;
    restore_sigint ();
    if fmt = Plain && Engine.Budget.cancelled budget then
      prerr_endline "search interrupted; results above are partial (bounded)";
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Parallel cached mapping search: all time-optimal schedules for a space mapping, \
          or the time/processor Pareto front (with $(b,--pareto))")
    Term.(
      const run $ algorithm_arg $ mu_int_arg $ s_arg $ dim_arg $ pareto_arg
      $ collision_free_arg $ jobs_arg $ deadline_arg $ slack_arg $ format_arg $ obs_term)

(* ------------------------------- fuzz ------------------------------ *)

let json_of_instance (inst : Check.Instance.t) =
  Json.Obj
    [
      ("mu", json_of_int_array inst.Check.Instance.mu);
      ("t", json_of_mat inst.Check.Instance.tmat);
    ]

let json_of_failure (f : Check.Diff.failure) =
  Json.Obj
    [
      ("index", Json.Int f.Check.Diff.index);
      ("instance", json_of_instance f.Check.Diff.instance);
      ("shrunk", json_of_instance f.Check.Diff.shrunk);
      ("oracle_conflict_free", Json.Bool f.Check.Diff.oracle_free);
      ( "disagreements",
        Json.Arr
          (List.map
             (fun (d : Check.Diff.disagreement) ->
               Json.Obj
                 [
                   ("path", Json.Str (Check.Diff.path_name d.Check.Diff.path));
                   ("detail", Json.Str d.Check.Diff.detail);
                 ])
             f.Check.Diff.disagreements) );
    ]

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.")
  in
  let count_arg =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Instances to check.")
  in
  let size_arg =
    Arg.(
      value
      & opt int 3
      & info [ "size" ] ~docv:"N"
          ~doc:
            "Size parameter: scales index-set bounds, matrix entries and dimension \
             together (see Check.Gen).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: the runtime's recommended domain count).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist every shrunk failing instance as DIR/fuzz-seed<seed>-<index>.case \
             for regression replay (the repository uses test/corpus).")
  in
  let run seed count size jobs corpus fmt obs =
    obs_begin obs;
    if size < 1 || size > 8 then failwith "--size must be between 1 and 8";
    if count < 1 then failwith "--count must be positive";
    let report = Check.Diff.run ?jobs ~seed ~count ~size () in
    let saved =
      match corpus with
      | None -> []
      | Some dir ->
        List.map
          (fun (f : Check.Diff.failure) ->
            let name = Printf.sprintf "fuzz-seed%d-%d" seed f.Check.Diff.index in
            let comment =
              Printf.sprintf "found by: shangfortes fuzz --seed %d --count %d --size %d\n%s"
                seed count size
                (String.concat "\n"
                   (List.map
                      (fun (d : Check.Diff.disagreement) ->
                        Check.Diff.path_name d.Check.Diff.path ^ ": " ^ d.Check.Diff.detail)
                      f.Check.Diff.disagreements))
            in
            Check.Corpus.save ~dir ~name ~comment f.Check.Diff.shrunk)
          report.Check.Diff.failures
    in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"fuzz"
           (obs_fields obs
              [
                ("seed", Json.Int report.Check.Diff.seed);
                ("size", Json.Int report.Check.Diff.size);
                ("jobs", Json.Int report.Check.Diff.jobs);
                ("checked", Json.Int report.Check.Diff.checked);
                ("failures", Json.Arr (List.map json_of_failure report.Check.Diff.failures));
                ("corpus_files", Json.Arr (List.map (fun p -> Json.Str p) saved));
              ]))
    | Plain ->
      Printf.printf "checked %d instances (seed %d, size %d, %d domains)\n"
        report.Check.Diff.checked report.Check.Diff.seed report.Check.Diff.size
        report.Check.Diff.jobs;
      (match report.Check.Diff.failures with
      | [] -> print_endline "all fast paths agree with the brute-force oracle"
      | failures ->
        List.iter
          (fun (f : Check.Diff.failure) ->
            Printf.printf "FAILURE at stream index %d (oracle: %s):\n" f.Check.Diff.index
              (if f.Check.Diff.oracle_free then "conflict-free" else "conflict");
            List.iter
              (fun (d : Check.Diff.disagreement) ->
                Printf.printf "  %s: %s\n"
                  (Check.Diff.path_name d.Check.Diff.path)
                  d.Check.Diff.detail)
              f.Check.Diff.disagreements;
            Format.printf "  original: @[%a@]@." Check.Instance.pp f.Check.Diff.instance;
            Format.printf "  shrunk:   @[%a@]@." Check.Instance.pp f.Check.Diff.shrunk)
          failures;
        List.iter (Printf.printf "saved corpus case: %s\n") saved));
    obs_end obs fmt;
    if report.Check.Diff.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: every conflict-freedom fast path against the brute-force \
          (processor, time) collision oracle, with counterexample shrinking")
    Term.(
      const run $ seed_arg $ count_arg $ size_arg $ jobs_arg $ corpus_arg $ format_arg
      $ obs_term)

(* ------------------------------ stats ------------------------------ *)

let stats_cmd =
  let pi_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "pi" ] ~docv:"PI" ~doc:"Linear schedule vector, comma separated.")
  in
  let run name mu s_opt pi_s fmt obs =
    obs_begin obs;
    let alg, default_s = builtin_algorithm name mu in
    let s = resolve_s s_opt default_s in
    let tm = Tmap.make ~s ~pi:(Intvec.of_ints (parse_vector pi_s)) in
    let st = Stats.compute alg tm in
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"stats"
           (obs_fields obs
              [
                ("algorithm", Json.Str name);
                ("mu", Json.Int mu);
                ("processors", Json.Int st.Stats.processors);
                ("makespan", Json.Int st.Stats.makespan);
                ("computations", Json.Int st.Stats.computations);
                ("utilization", Json.Float st.Stats.utilization);
                ("max_pe_load", Json.Int st.Stats.max_pe_load);
                ("min_pe_load", Json.Int st.Stats.min_pe_load);
                ("peak_parallelism", Json.Int st.Stats.peak_parallelism);
                ("wire_length", Json.Int st.Stats.wire_length);
              ]))
    | Plain -> Format.printf "%a@." Stats.pp st);
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Array statistics of a mapping (PEs, utilization, wire length)")
    Term.(const run $ algorithm_arg $ mu_int_arg $ s_arg $ pi_arg $ format_arg $ obs_term)

(* ------------------------------- serve ----------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "shangfortes.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path (ignored with $(b,--port)).")

(* Shared by serve, client and chaos: the wire dialect (docs/SERVER.md).
   Servers advertise the newest dialect they accept; clients pick the
   dialect to negotiate. *)
let transport_conv = Arg.enum [ ("json", Server.Wire.V1); ("binary", Server.Wire.V2) ]

let serve_transport_arg =
  Arg.(
    value
    & opt transport_conv Server.Wire.V2
    & info [ "transport" ] ~docv:"T"
        ~doc:
          "Newest wire dialect a $(i,hello) may negotiate: $(b,binary) (default) offers \
           the v2 length-prefixed framing, $(b,json) pins connections to v1 JSON lines.")

let client_transport_arg =
  Arg.(
    value
    & opt transport_conv Server.Wire.V1
    & info [ "transport" ] ~docv:"T"
        ~doc:
          "Wire dialect to negotiate: $(b,json) (default, v1 JSON lines) or $(b,binary) \
           (v2 length-prefixed framing via a $(i,hello) handshake).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:"Listen on TCP 127.0.0.1:$(docv) instead of a Unix socket.")

let serve_cmd =
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Pool domains per batch (default: runtime choice).")
  in
  let inflight_arg =
    Arg.(
      value & opt int 2
      & info [ "max-inflight" ] ~docv:"N" ~doc:"Concurrent batches in flight (worker threads).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue capacity; requests beyond it are shed with an \
                $(i,overloaded) reply.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N" ~doc:"Largest batch fanned across the pool.")
  in
  let store_path_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE" ~doc:"Persistent verdict store journal.")
  in
  let fsync_arg =
    Arg.(
      value & opt int 32
      & info [ "fsync-every" ] ~docv:"N" ~doc:"Records between store fsyncs.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Hash-indexed store snapshot ($(b,compact) writes it): the store \
             warm-starts from it and serves memory misses out of its index \
             (docs/CLUSTER.md).")
  in  let admission_target_arg =
    Arg.(
      value & opt float 250.
      & info [ "admission-target-ms" ] ~docv:"MS"
          ~doc:
            "Admission-to-completion latency target of the adaptive (AIMD) \
             concurrency limiter; sustained completions above it shrink the \
             admission limit (docs/SERVER.md).")
  in

  let run socket port jobs max_inflight queue batch store_path fsync_every snapshot_path
      max_transport admission_target_ms fmt obs =
    obs_begin obs;
    let listen =
      match port with
      | Some p -> Server.Daemon.Tcp p
      | None -> Server.Daemon.Unix_sock socket
    in
    let cfg =
      {
        (Server.Daemon.default_config listen) with
        Server.Daemon.jobs;
        max_inflight;
        queue_capacity = queue;
        batch_max = batch;
        store_path;
        snapshot_path;
        fsync_every;
        max_transport;
        admission_target_ms;
      }
    in
    let t = Server.Daemon.create cfg in
    (match Server.Daemon.store t with
    | Some st ->
      let s = Server.Store.stats st in
      Printf.eprintf "store: %d records in %.1f ms (%s)\n%!" s.Server.Store.entries
        s.Server.Store.open_ms s.Server.Store.provenance
    | None -> ());
    (* [wake] is the only thing a signal handler may touch: one
       self-pipe write, no locks.  [run] turns it into a graceful
       drain — in-flight budgets cancelled, accepted work flushed. *)
    let handler = Sys.Signal_handle (fun _ -> Server.Daemon.wake t) in
    let old_int = Sys.signal Sys.sigint handler in
    let old_term = Sys.signal Sys.sigterm handler in
    (match Server.Daemon.port t with
    | Some p -> Printf.eprintf "serving on 127.0.0.1:%d\n%!" p
    | None -> Printf.eprintf "serving on %s\n%!" socket);
    Server.Daemon.run t;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"serve" (obs_fields obs (Server.Daemon.stats_fields t)))
    | Plain ->
      prerr_endline "drained";
      List.iter
        (fun (k, v) -> Printf.printf "%s = %s\n" k (Json.to_string v))
        (Server.Daemon.stats_fields t));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the mapping-query daemon: a batching, backpressured service speaking the \
          versioned wire protocol (JSON lines and negotiated binary framing) with a \
          persistent verdict store (protocol in docs/SERVER.md)")
    Term.(
      const run $ socket_arg $ port_arg $ jobs_arg $ inflight_arg $ queue_cap_arg
      $ batch_arg $ store_path_arg $ fsync_arg $ snapshot_arg $ serve_transport_arg
      $ admission_target_arg $ format_arg $ obs_term)

(* ------------------------------ compact ---------------------------- *)

let compact_cmd =
  let store_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE" ~doc:"Store journal to compact.")
  in
  let snapshot_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:"Snapshot file to write (replaced atomically; also merged in when it \
                already exists).")
  in
  let run store_path snapshot fmt obs =
    obs_begin obs;
    let st = Server.Store.open_ ~snapshot store_path in
    let before = Server.Store.stats st in
    let records = Server.Store.compact_to_snapshot st ~snapshot in
    Server.Store.close st;
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"compact"
           (obs_fields obs
              [
                ("store", Json.Str store_path);
                ("snapshot", Json.Str snapshot);
                ("records", Json.Int records);
                ("open_ms", Json.Float before.Server.Store.open_ms);
                ("provenance", Json.Str before.Server.Store.provenance);
              ]))
    | Plain ->
      Printf.printf "%d records -> %s (journal truncated; opened from %s in %.1f ms)\n"
        records snapshot before.Server.Store.provenance before.Server.Store.open_ms);
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rotate a store journal into a hash-indexed snapshot: every live record moves \
          into the sorted, CRC-footed snapshot file and the journal is truncated to a \
          bare header, so the next open is O(1) seeks instead of a full replay \
          (docs/CLUSTER.md)")
    Term.(const run $ store_arg $ snapshot_arg $ format_arg $ obs_term)

(* ------------------------------- route ----------------------------- *)

(* Socket specs accepted by [route --shard] and [client --shards]:
   "tcp:PORT", "tcp:HOST:PORT", or a Unix socket path (optionally
   "unix:PATH"). *)
let parse_addr spec : Server.Client.addr =
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf "bad address %S (want tcp:PORT, tcp:HOST:PORT or a socket path)"
            spec))
  in
  match String.split_on_char ':' spec with
  | [ "tcp"; port ] -> (
    match int_of_string_opt port with Some p -> `Tcp ("127.0.0.1", p) | None -> fail ())
  | [ "tcp"; host; port ] -> (
    match int_of_string_opt port with Some p -> `Tcp (host, p) | None -> fail ())
  | [ "unix"; path ] -> `Unix path
  | [ _ ] when spec <> "" -> `Unix spec
  | _ -> fail ()

let parse_shard_spec spec =
  match String.split_on_char ',' spec with
  | primary :: rest ->
    let follower = ref None and journal = ref None in
    List.iter
      (fun field ->
        match String.index_opt field '=' with
        | Some i -> (
          let k = String.sub field 0 i
          and v = String.sub field (i + 1) (String.length field - i - 1) in
          match k with
          | "follower" -> follower := Some (parse_addr v)
          | "journal" -> journal := Some v
          | _ -> raise (Invalid_argument ("unknown shard spec key: " ^ k)))
        | None -> raise (Invalid_argument ("bad shard spec field (want key=value): " ^ field)))
      rest;
    { Cluster.Router.primary = parse_addr primary; follower = !follower; journal = !journal }
  | [] -> raise (Invalid_argument "empty shard spec")

let route_cmd =
  let shard_arg =
    Arg.(
      non_empty & opt_all string []
      & info [ "shard" ] ~docv:"SPEC"
          ~doc:
            "One shard (repeatable, ring order): \
             $(i,ADDR)[,follower=$(i,ADDR)][,journal=$(i,FILE)] where $(i,ADDR) is \
             $(b,tcp:PORT), $(b,tcp:HOST:PORT) or a Unix socket path.  $(i,journal) \
             (the primary's store journal) plus $(i,follower) enable replication and \
             promotion-on-death.")
  in
  let pool_arg =
    Arg.(
      value & opt int 2
      & info [ "pool" ] ~docv:"N" ~doc:"Pipelined upstream connections per shard.")
  in
  let health_interval_arg =
    Arg.(
      value & opt int 1000
      & info [ "health-interval-ms" ] ~docv:"MS"
          ~doc:"Milliseconds between shard health probes (and shipping pumps).")
  in
  let health_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "health-threshold" ] ~docv:"N"
          ~doc:"Consecutive probe failures before the follower is promoted.")
  in
  let vnodes_arg =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N" ~doc:"Consistent-hash ring points per shard.")
  in
  let shard_transport_arg =
    Arg.(
      value
      & opt transport_conv Server.Wire.V2
      & info [ "shard-transport" ] ~docv:"T"
          ~doc:"Wire dialect towards the shards: $(b,binary) (default) or $(b,json).")
  in
  let hedge_delay_arg =
    Arg.(
      value & opt int 0
      & info [ "hedge-delay-ms" ] ~docv:"MS"
          ~doc:
            "Hedge analyze requests still unanswered after $(docv) on the shard's \
             follower: $(b,0) (default) adapts to twice the shard's observed p99, \
             a positive value fixes the delay, $(b,-1) disables hedging.")
  in
  let hedge_budget_arg =
    Arg.(
      value & opt int 64
      & info [ "hedge-budget" ] ~docv:"N"
          ~doc:"Hedge token-bucket capacity (refills one budget per second); \
                $(b,0) disables hedging.")
  in
  let latency_limit_arg =
    Arg.(
      value & opt float 500.
      & info [ "latency-limit-ms" ] ~docv:"MS"
          ~doc:
            "Probe-latency EWMA above which a shard's circuit breaker opens and \
             its analyze traffic diverts to the follower; $(b,0) disables the \
             breaker.")
  in
  let run socket port shards pool health_interval_ms health_threshold vnodes
      shard_transport max_transport hedge_delay_ms hedge_budget latency_limit_ms fmt obs =
    obs_begin obs;
    let listen =
      match port with
      | Some p -> Server.Daemon.Tcp p
      | None -> Server.Daemon.Unix_sock socket
    in
    let hedge =
      if hedge_delay_ms < 0 then Cluster.Router.No_hedge
      else if hedge_delay_ms = 0 then Cluster.Router.Adaptive
      else Cluster.Router.Fixed_ms hedge_delay_ms
    in
    let cfg =
      {
        Cluster.Router.listen;
        shards = List.map parse_shard_spec shards;
        pool_size = pool;
        shard_transport;
        max_transport;
        health_interval_ms;
        health_threshold;
        vnodes;
        hedge;
        hedge_budget;
        latency_limit_ms;
      }
    in
    let t = Cluster.Router.create cfg in
    let handler = Sys.Signal_handle (fun _ -> Cluster.Router.wake t) in
    let old_int = Sys.signal Sys.sigint handler in
    let old_term = Sys.signal Sys.sigterm handler in
    (match Cluster.Router.port t with
    | Some p -> Printf.eprintf "routing on 127.0.0.1:%d (%d shards)\n%!" p (List.length shards)
    | None -> Printf.eprintf "routing on %s (%d shards)\n%!" socket (List.length shards));
    Cluster.Router.run t;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    (match fmt with
    | Json_v2 ->
      Json.print
        (Json.versioned ~command:"route" (obs_fields obs (Cluster.Router.stats_fields t)))
    | Plain ->
      prerr_endline "drained";
      List.iter
        (fun (k, v) -> Printf.printf "%s = %s\n" k (Json.to_string v))
        (Cluster.Router.stats_fields t));
    obs_end obs fmt
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster router: consistent-hash analyze requests across daemon \
          shards, ship each shard's journal to its follower, and promote followers \
          on shard death (docs/CLUSTER.md)")
    Term.(
      const run $ socket_arg $ port_arg $ shard_arg $ pool_arg $ health_interval_arg
      $ health_threshold_arg $ vnodes_arg $ shard_transport_arg $ serve_transport_arg
      $ hedge_delay_arg $ hedge_budget_arg $ latency_limit_arg $ format_arg $ obs_term)

(* ------------------------------- client ----------------------------- *)

let client_cmd =
  let requests_arg =
    Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let concurrency_arg =
    Arg.(value & opt int 8 & info [ "concurrency" ] ~docv:"N" ~doc:"Client worker threads.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 64
      & info [ "distinct" ] ~docv:"N"
          ~doc:"Distinct instances in the cycled pool (a second pass over the stream \
                hits the server's warm store).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Instance stream seed.")
  in
  let size_arg =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Instance stream size parameter.")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip comparing each reply against a local direct Analysis.check.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request budget deadline.")
  in
  let expect_no_shed_arg =
    Arg.(
      value & flag
      & info [ "expect-no-shed" ] ~doc:"Exit nonzero when any request was shed (CI mode).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Requests kept in flight per connection (replies are matched by id).")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "shards" ] ~docv:"ADDRS"
          ~doc:
            "Comma-separated addresses ($(b,tcp:PORT), $(b,tcp:HOST:PORT) or socket \
             paths) to round-robin the workers over — a router plus direct shard \
             sockets, or a whole fleet; every reply is still verified byte-for-byte \
             against local analysis, whichever server produced it.  Overrides \
             $(b,--socket)/$(b,--port).")
  in
  let run socket port shards requests concurrency distinct seed size no_verify
      deadline_ms transport pipeline expect_no_shed out fmt obs =
    obs_begin obs;
    let addrs =
      match shards with
      | Some specs -> List.map parse_addr specs
      | None ->
        [ (match port with Some p -> `Tcp ("127.0.0.1", p) | None -> `Unix socket) ]
    in
    let cfg =
      {
        Server.Client.requests;
        concurrency;
        distinct;
        seed;
        size;
        verify = not no_verify;
        deadline_ms;
        transport;
        pipeline;
      }
    in
    let r = Server.Client.load_any addrs cfg in
    let doc =
      Json.versioned ~command:"client"
        (obs_fields obs
           (match Server.Client.json_of_load_report r with
           | Json.Obj fields -> fields
           | other -> [ ("report", other) ]))
    in
    (match out with None -> () | Some path -> Obs.Export.write_file path doc);
    (match fmt with
    | Json_v2 -> Json.print doc
    | Plain ->
      Printf.printf
        "%d requests (%s transport, pipeline %d): %d ok, %d shed, %d draining, %d \
         errors, %d disagreement(s)\n\
         p50 = %.2f ms  p95 = %.2f ms  p99 = %.2f ms  max = %.2f ms\n\
         %.0f requests/s over %.2f s\n"
        r.Server.Client.sent r.Server.Client.transport r.Server.Client.pipeline
        r.Server.Client.ok r.Server.Client.shed r.Server.Client.draining
        r.Server.Client.errors r.Server.Client.disagreements r.Server.Client.p50_ms
        r.Server.Client.p95_ms r.Server.Client.p99_ms r.Server.Client.max_ms
        r.Server.Client.rps r.Server.Client.wall_s);
    obs_end obs fmt;
    if
      r.Server.Client.disagreements > 0
      || r.Server.Client.errors > 0
      || (expect_no_shed && r.Server.Client.shed > 0)
    then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Load-generate against a running daemon and verify its replies against direct \
          local analysis")
    Term.(
      const run $ socket_arg $ port_arg $ shards_arg $ requests_arg $ concurrency_arg
      $ distinct_arg $ seed_arg $ size_arg $ no_verify_arg $ deadline_arg
      $ client_transport_arg $ pipeline_arg $ expect_no_shed_arg $ out_arg $ format_arg
      $ obs_term)

(* ------------------------------- chaos ----------------------------- *)

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seeds the instance stream, the fault plan and the retry jitter.")
  in
  let requests_arg =
    Arg.(value & opt int 500 & info [ "requests" ] ~docv:"N" ~doc:"Total requests to drive.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 32
      & info [ "distinct" ] ~docv:"N" ~doc:"Distinct instances in the cycled pool.")
  in
  let size_arg =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Instance stream size parameter.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (list string) [ "io"; "worker"; "conn" ]
      & info [ "faults" ] ~docv:"CLASSES"
          ~doc:
            "Comma-separated fault classes to arm: io, conn, worker, clock, \
             cluster, latency.")
  in
  let delay_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "delay-ms" ] ~docv:"MS"
          ~doc:
            "Stall applied by fired $(i,latency)-class consults (default 25, or \
             50 under $(b,--cluster)); ambient — applied, never logged per event.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"P" ~doc:"Per-consult fault probability in [0,1].")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 1
      & info [ "concurrency" ] ~docv:"N"
          ~doc:
            "Driver threads.  The default 1 keeps the fault log byte-identical across \
             runs with the same seed; higher values trade that for contention.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Daemon pool domains (default: runtime choice).")
  in
  let expect_converged_arg =
    Arg.(
      value & flag
      & info [ "expect-converged" ]
          ~doc:
            "Exit nonzero unless the run converged: zero verdict disagreements and zero \
             lost acknowledged writes (CI mode).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let fault_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-log" ] ~docv:"FILE"
          ~doc:
            "Write the canonical fault log (one $(i,site#seq action) line each) to \
             $(docv); two runs with the same seed must produce identical files.")
  in
  let kill_arg =
    Arg.(
      value
      & opt (enum [ ("drain", false); ("hard", true) ]) false
      & info [ "kill" ] ~docv:"MODE"
          ~doc:
            "How $(b,--cluster) kills the doomed shard: $(b,drain) (default, \
             graceful) or $(b,hard) (SIGKILL-grade abort — queued work and \
             buffered replies discarded; pair with $(b,--fsync-every) 1 to audit \
             the sync-per-ack durability contract).")
  in
  let chaos_fsync_arg =
    Arg.(
      value & opt int 4
      & info [ "fsync-every" ] ~docv:"N"
          ~doc:"Shard daemons' store sync interval under $(b,--cluster).")
  in
  let slo_arg =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "Three-pass SLO audit under $(b,--cluster): fault-free baseline, gray \
             (latency faults) with hedging, gray without; convergence then also \
             requires hedged p99 within max(3x baseline, 25 ms) while unhedged \
             degrades past it.  With the default $(b,--faults) the armed classes \
             become just $(i,latency).")
  in
  let no_hedge_arg =
    Arg.(
      value & flag
      & info [ "no-hedge" ]
          ~doc:"Disable router hedging in the $(b,--cluster) main pass.")
  in
  let cluster_arg =
    Arg.(
      value & opt int 0
      & info [ "cluster" ] ~docv:"SHARDS"
          ~doc:
            "Run the $(i,cluster) chaos harness instead: boot $(docv) shard daemons \
             with followers behind an in-process router, kill one shard mid-load \
             (fault site $(i,shard.kill)), promote its follower, and audit zero lost \
             acked writes fleet-wide.  With the default $(b,--faults) the armed \
             classes become just $(i,cluster) — the fleet's background traffic makes \
             the io/conn sites nondeterministic (docs/CLUSTER.md).")
  in
  let write_fault_log fault_log lines =
    match fault_log with
    | None -> ()
    | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            lines)
  in
  let run_cluster ~shards ~seed ~requests ~distinct ~size ~classes ~rate ~transport
      ~hard_kill ~fsync_every ~slo ~no_hedge ~delay_ms ~expect_converged ~out
      ~fault_log fmt obs =
    let classes =
      if classes = [ "io"; "worker"; "conn" ] then
        if slo then [ "latency" ] else [ "cluster" ]
      else classes
    in
    let r =
      Cluster.Chaos_cluster.run
        { Cluster.Chaos_cluster.seed; requests; distinct; size; shards; classes;
          rate; transport; hedge = not no_hedge; hard_kill; fsync_every; slo;
          delay_ms = Option.value delay_ms ~default:50 }
    in
    let doc =
      Json.versioned ~command:"chaos"
        (obs_fields obs
           (match Cluster.Chaos_cluster.json_of_report r with
           | Json.Obj fields -> fields
           | other -> [ ("report", other) ]))
    in
    (match out with None -> () | Some path -> Obs.Export.write_file path doc);
    write_fault_log fault_log r.Cluster.Chaos_cluster.fault_log;
    (match fmt with
    | Json_v2 -> Json.print doc
    | Plain ->
      Printf.printf
        "%d requests over %d shards (%s transport): %d ok, %d errors, %d retried (%d \
         attempts total)\n\
         faults injected = %d (fingerprint %s)\n\
         killed shard %d at request %d (%s), acked = %d, lost writes = %d, \
         disagreements = %d -> %s\n\
         p50 = %.2f ms  p95 = %.2f ms  p99 = %.2f ms\n"
        r.Cluster.Chaos_cluster.requests r.Cluster.Chaos_cluster.shards
        r.Cluster.Chaos_cluster.transport r.Cluster.Chaos_cluster.ok
        r.Cluster.Chaos_cluster.errors r.Cluster.Chaos_cluster.retried
        r.Cluster.Chaos_cluster.attempts r.Cluster.Chaos_cluster.faults
        r.Cluster.Chaos_cluster.fingerprint r.Cluster.Chaos_cluster.killed_shard
        r.Cluster.Chaos_cluster.killed_at
        (if r.Cluster.Chaos_cluster.promoted then "follower promoted"
         else "no promotion")
        r.Cluster.Chaos_cluster.acked r.Cluster.Chaos_cluster.lost_writes
        r.Cluster.Chaos_cluster.disagreements
        (if r.Cluster.Chaos_cluster.converged then "converged" else "DIVERGED")
        r.Cluster.Chaos_cluster.p50_ms r.Cluster.Chaos_cluster.p95_ms
        r.Cluster.Chaos_cluster.p99_ms;
      Printf.printf "hedges = %d (%d won), delays = %d\n"
        r.Cluster.Chaos_cluster.hedges r.Cluster.Chaos_cluster.hedge_wins
        r.Cluster.Chaos_cluster.delays;
      match r.Cluster.Chaos_cluster.slo with
      | None -> ()
      | Some s ->
        Printf.printf
          "slo: baseline p99 = %.2f ms, hedged p99 = %.2f ms (bound %.2f ms, %s), \
           unhedged p99 = %.2f ms (%s)\n"
          s.Cluster.Chaos_cluster.baseline_p99_ms
          s.Cluster.Chaos_cluster.hedged_p99_ms s.Cluster.Chaos_cluster.bound_ms
          (if s.Cluster.Chaos_cluster.hedged_within_bound then "within" else "OVER")
          s.Cluster.Chaos_cluster.unhedged_p99_ms
          (if s.Cluster.Chaos_cluster.unhedged_degraded then "degraded as expected"
           else "NOT degraded"));
    obs_end obs fmt;
    if expect_converged && not r.Cluster.Chaos_cluster.converged then exit 1
  in
  let run seed requests distinct size classes rate concurrency jobs transport cluster
      hard_kill fsync_every slo no_hedge delay_ms expect_converged out fault_log fmt
      obs =
    obs_begin obs;
    if cluster > 0 then
      run_cluster ~shards:cluster ~seed ~requests ~distinct ~size ~classes ~rate
        ~transport ~hard_kill ~fsync_every ~slo ~no_hedge ~delay_ms ~expect_converged
        ~out ~fault_log fmt obs
    else begin
    let r =
      Server.Chaos.run
        {
          Server.Chaos.seed;
          requests;
          distinct;
          size;
          classes;
          rate;
          concurrency;
          jobs;
          deadline_ms = None;
          transport;
          delay_ms = Option.value delay_ms ~default:25;
        }
    in
    let doc =
      Json.versioned ~command:"chaos"
        (obs_fields obs
           (match Server.Chaos.json_of_report r with
           | Json.Obj fields -> fields
           | other -> [ ("report", other) ]))
    in
    (match out with None -> () | Some path -> Obs.Export.write_file path doc);
    write_fault_log fault_log r.Server.Chaos.fault_log;
    (match fmt with
    | Json_v2 -> Json.print doc
    | Plain ->
      Printf.printf
        "%d requests (%s transport): %d ok, %d errors, %d retried (%d attempts total)\n\
         faults injected = %d (fingerprint %s), worker deaths = %d\n\
         acked = %d, lost writes = %d, disagreements = %d -> %s\n\
         p50 = %.2f ms  p95 = %.2f ms  p99 = %.2f ms\n\
         recovery p50 = %.2f ms  p95 = %.2f ms  max = %.2f ms\n"
        r.Server.Chaos.requests r.Server.Chaos.transport r.Server.Chaos.ok
        r.Server.Chaos.errors r.Server.Chaos.retried r.Server.Chaos.attempts
        r.Server.Chaos.faults
        r.Server.Chaos.fingerprint r.Server.Chaos.worker_deaths r.Server.Chaos.acked
        r.Server.Chaos.lost_writes r.Server.Chaos.disagreements
        (if r.Server.Chaos.converged then "converged" else "DIVERGED")
        r.Server.Chaos.p50_ms r.Server.Chaos.p95_ms r.Server.Chaos.p99_ms
        r.Server.Chaos.recovery_p50_ms r.Server.Chaos.recovery_p95_ms
        r.Server.Chaos.recovery_max_ms);
    obs_end obs fmt;
    if expect_converged && not r.Server.Chaos.converged then exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Boot the in-process daemon (or, with $(b,--cluster), a sharded fleet with \
          followers and a router) under a seeded fault plan, drive verified requests \
          through the retrying client, and audit convergence (docs/RESILIENCE.md)")
    Term.(
      const run $ seed_arg $ requests_arg $ distinct_arg $ size_arg $ faults_arg
      $ rate_arg $ concurrency_arg $ jobs_arg $ client_transport_arg $ cluster_arg
      $ kill_arg $ chaos_fsync_arg $ slo_arg $ no_hedge_arg $ delay_ms_arg
      $ expect_converged_arg $ out_arg $ fault_log_arg $ format_arg $ obs_term)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc = "time-optimal conflict-free mappings of uniform dependence algorithms" in
  let info = Cmd.info "shangfortes" ~version:"1.2.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            hnf_cmd; analyze_cmd; family_cmd; optimize_cmd; simulate_cmd; exec_cmd;
            parse_cmd;
            pareto_cmd; search_cmd; stats_cmd; fuzz_cmd; serve_cmd; compact_cmd;
            route_cmd; client_cmd; chaos_cmd;
          ]))
