(* Example 5.1 end to end: map 3-D matrix multiplication onto a linear
   systolic array with the paper's space mapping S = [1,1,-1], compare
   the paper's optimal schedule against the Lee-Kedem schedule of [23],
   and multiply two concrete matrices through the simulated array.

   Run with: dune exec examples/matmul_linear_array.exe [-- mu]        *)

let () =
  let mu =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  let alg = Matmul.algorithm ~mu in
  let rng = Random.State.make [| 7; mu |] in
  let a = Matmul.random_matrix ~rng (mu + 1) in
  let b = Matmul.random_matrix ~rng (mu + 1) in
  let sem = Matmul.semantics ~a ~b in

  let run name pi =
    let tm = Tmap.make ~s:Matmul.paper_s ~pi in
    let t = Tmap.matrix tm in
    let bounds = Index_set.bounds alg.Algorithm.index_set in
    Printf.printf "\n--- %s: Pi = %s ---\n" name (Intvec.to_string pi);
    (match Conflict.single_conflict_vector t with
    | Some gamma ->
      Printf.printf "conflict vector %s: %s (Theorem 2.2)\n" (Intvec.to_string gamma)
        (if Conflict.is_feasible ~mu:bounds gamma then "feasible" else "NOT feasible")
    | None -> print_endline "rank deficient");
    let r = Exec.run alg sem tm in
    Printf.printf
      "makespan %d | %d PEs | conflicts %d | link collisions %d | buffers (%s) | verification %s\n"
      r.Exec.makespan r.Exec.num_processors (List.length r.Exec.conflicts)
      (List.length r.Exec.collisions)
      (String.concat "," (Array.to_list (Array.map string_of_int r.Exec.max_buffer_occupancy)))
      (Exec.verification_name r.Exec.verified);
    r
  in

  (* The paper's optimal schedule (even mu) vs the [23] schedule. *)
  let r_opt =
    match Procedure51.optimize alg ~s:Matmul.paper_s with
    | Some r -> run "time-optimal (Procedure 5.1)" r.Procedure51.pi
    | None -> failwith "no optimal schedule found"
  in
  let r_lk = run "Lee-Kedem [23]" (Matmul.lee_kedem_pi ~mu) in
  Printf.printf "\nSpeedup over [23]: %.2fx (paper: mu(mu+3)+1 vs mu(mu+2)+1)\n"
    (float_of_int r_lk.Exec.makespan /. float_of_int r_opt.Exec.makespan);

  (* Show the computed product is the real product. *)
  let value = Algorithm.evaluate_all alg sem in
  let c = Matmul.product_of_values ~mu value in
  assert (c = Matmul.reference_product a b);
  Printf.printf "C[0][0] = %d  (verified against direct multiplication)\n" c.(0).(0);

  (* Figure-3-style trace for small instances. *)
  if mu <= 4 then begin
    print_endline "\nExecution table (Figure 3):";
    let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
    print_string (Trace.linear_array_table alg tm)
  end
