(* The paper's motivating scenario (Sections 1 and 5): a 5-dimensional
   bit-level algorithm mapped onto a 2-dimensional processor array —
   the RAB use case that formulation (5.5)-(5.6) and Proposition 8.1
   were built for.

   We take the 5-D bit-level matrix multiplication structure, a 2-D
   space mapping S normalized as Proposition 8.1 requires, find the
   optimal conflict-free schedule, show the closed-form kernel
   generators agree with the generic Hermite machinery, and simulate.

   Run with: dune exec examples/bitlevel_2d.exe                        *)

let () =
  let mu_word = 2 and mu_bit = 2 in
  let alg = Bit_matmul.algorithm ~mu_word ~mu_bit in
  let s = Bit_matmul.example_s in
  Printf.printf "5-D bit-level matmul: |J| = %d, S =\n%s\n"
    (Index_set.cardinal alg.Algorithm.index_set)
    (Intmat.to_string s);
  assert (Prop81.applicable ~s);

  match Procedure51.optimize ~max_objective:40 alg ~s with
  | None -> print_endline "no conflict-free schedule within the search bound"
  | Some r ->
    let pi = r.Procedure51.pi in
    Printf.printf "Optimal Pi = %s, total time = %d (%d candidates examined)\n"
      (Intvec.to_string pi) r.Procedure51.total_time r.Procedure51.candidates_tried;
    let t = Intmat.append_row s pi in

    (* Proposition 8.1: kernel generators without Hermite reduction. *)
    (match Prop81.compute ~s ~pi with
    | Some p ->
      Printf.printf "Prop 8.1: u4 = %s, u5 = %s (h33 = %s, h34 = %s, h35 = %s)\n"
        (Intvec.to_string p.Prop81.u4) (Intvec.to_string p.Prop81.u5)
        (Zint.to_string p.Prop81.h33) (Zint.to_string p.Prop81.h34) (Zint.to_string p.Prop81.h35);
      let canon basis = (Hnf.compute (Intmat.of_cols basis)).Hnf.h in
      Printf.printf "Same conflict-vector lattice as the HNF kernel basis: %b\n"
        (Intmat.equal (canon [ p.Prop81.u4; p.Prop81.u5 ]) (canon (Hnf.kernel_basis t)))
    | None -> print_endline "Prop 8.1 degenerate (unexpected here)");

    (* Theorem 4.7 on this codimension-2 mapping, and the engine's
       one-call verdict that subsumes it. *)
    let mu = Index_set.bounds alg.Algorithm.index_set in
    let inp = Theorems.make_input ~mu t in
    let verdict = Analysis.check ~mu t in
    Printf.printf "Theorem 4.7 (sufficient): %b | Analysis.check: %b [%s, %.2f ms]\n"
      (Theorems.nec_suff_n_minus_2 inp)
      verdict.Analysis.conflict_free
      (Analysis.decided_by_name verdict.Analysis.decided_by)
      (1000. *. verdict.Analysis.timing);

    (* Simulate the 2-D array (dataflow semantics; see DESIGN.md). *)
    let report = Exec.run alg Dataflow.semantics (Tmap.make ~s ~pi) in
    Printf.printf
      "2-D array: %d PEs, %d cycles, conflicts %d, collisions %d, verification %s, utilization %.2f\n"
      report.Exec.num_processors report.Exec.makespan
      (List.length report.Exec.conflicts) (List.length report.Exec.collisions)
      (Exec.verification_name report.Exec.verified) report.Exec.utilization
