(* Quickstart: define a uniform dependence algorithm, check a mapping
   for computational conflicts, find the time-optimal schedule, and
   simulate the resulting processor array.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. An algorithm is the pair (J, D): a constant-bounded index set
     and a matrix of uniform dependence vectors (Definition 2.1).
     This one is 3-D matrix multiplication on [0,4]^3. *)
  let mu = 4 in
  let alg =
    Algorithm.make ~name:"quickstart-matmul"
      ~index_set:(Index_set.cube ~n:3 ~mu)
      ~dependences:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]
  in
  Printf.printf "Algorithm %s: n = %d, %d dependences, |J| = %d\n"
    alg.Algorithm.name (Algorithm.dim alg)
    (Algorithm.num_dependences alg)
    (Index_set.cardinal alg.Algorithm.index_set);

  (* 2. A mapping T = [S; Pi] sends point j to processor S j at time
     Pi j (Definition 2.2).  Because T has a nontrivial kernel, two
     points can collide; conflict vectors characterize when. *)
  let s = Intmat.of_ints [ [ 1; 1; -1 ] ] in
  let bad_pi = Intvec.of_ints [ 1; 1; 1 ] in
  let bad_t = Intmat.append_row s bad_pi in
  let bounds = Index_set.bounds alg.Algorithm.index_set in
  let verdict = Analysis.check ~mu:bounds bad_t in
  (match verdict.Analysis.witness with
  | Some gamma ->
    Printf.printf "Pi = (1,1,1) collides: conflict vector %s fits inside J [%s]\n"
      (Intvec.to_string gamma)
      (Analysis.decided_by_name verdict.Analysis.decided_by)
  | None -> print_endline "unexpectedly conflict-free");

  (* 3. Procedure 5.1 finds the fastest conflict-free schedule. *)
  (match Procedure51.optimize alg ~s with
  | Some r ->
    Printf.printf "Optimal schedule Pi = %s, total time %d (Equation 2.7)\n"
      (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time;

    (* 4. Simulate the array cycle by cycle and verify the run. *)
    let rng = Random.State.make [| 42 |] in
    let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
    let tm = Tmap.make ~s ~pi:r.Procedure51.pi in
    let report = Exec.run alg (Matmul.semantics ~a ~b) tm in
    Printf.printf
      "Simulated: %d computations on %d PEs in %d cycles; conflicts = %d; verification = %s\n"
      report.Exec.computations report.Exec.num_processors report.Exec.makespan
      (List.length report.Exec.conflicts)
      (Exec.verification_name report.Exec.verified)
  | None -> print_endline "no schedule found")
