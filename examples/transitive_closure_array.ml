(* Example 5.2 end to end: the reindexed transitive closure algorithm
   (Equation 3.6) mapped onto a linear array with S = [0,0,1].

   The mapping machinery reproduces the paper's headline result — the
   schedule Pi = (mu+1, 1, 1) with total time mu(mu+3)+1, improving the
   mu(2mu+3)+1 of [22] — and the simulator validates the full dataflow.
   The arithmetic of the reindexed recurrence lives in [17] and is not
   part of the paper's evaluation, so the array run uses dataflow
   fingerprints; a direct Warshall closure shows the computation the
   array family implements.

   Run with: dune exec examples/transitive_closure_array.exe [-- mu]   *)

let () =
  let mu = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let alg = Transitive_closure.algorithm ~mu in
  let s = Transitive_closure.paper_s in

  (* Optimal schedule via both of the paper's methods. *)
  let p51 = Procedure51.optimize alg ~s in
  let ilp = Ilp_form.optimize alg ~s in
  (match (p51, ilp) with
  | Some r, Some sol ->
    Printf.printf
      "Procedure 5.1: Pi = %s, t = %d   |   ILP (5.4): Pi = %s, t = %d   (paper: t = %d)\n"
      (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time
      (Intvec.to_string sol.Ilp_form.pi)
      (sol.Ilp_form.objective + 1)
      (Transitive_closure.optimal_total_time ~mu);
    Printf.printf "Conflict vector gamma = %s (paper: (1, -(mu+1), 0))\n"
      (Intvec.to_string sol.Ilp_form.gamma)
  | _ -> failwith "optimization failed");

  Printf.printf "Improvement over [22]'s heuristic: %d -> %d cycles (%.2fx)\n"
    (Transitive_closure.prior_total_time ~mu)
    (Transitive_closure.optimal_total_time ~mu)
    (float_of_int (Transitive_closure.prior_total_time ~mu)
    /. float_of_int (Transitive_closure.optimal_total_time ~mu));

  (* Simulate the optimal mapping: mu+1 processors, exact dataflow. *)
  let tm = Tmap.make ~s ~pi:(Transitive_closure.optimal_pi ~mu) in
  let r = Exec.run alg Dataflow.semantics tm in
  Printf.printf
    "Array run: %d computations on %d PEs in %d cycles; conflicts %d; collisions %d; verification %s\n"
    r.Exec.computations r.Exec.num_processors r.Exec.makespan
    (List.length r.Exec.conflicts) (List.length r.Exec.collisions)
    (Exec.verification_name r.Exec.verified);

  (* The computation this array family implements, on a random digraph. *)
  let n = mu + 1 in
  let rng = Random.State.make [| 13; mu |] in
  let adj = Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 4 = 0)) in
  let closure = Transitive_closure.warshall adj in
  let count m =
    Array.fold_left (fun acc row -> Array.fold_left (fun a x -> if x then a + 1 else a) acc row) 0 m
  in
  Printf.printf "Warshall on a random %dx%d relation: %d edges -> %d edges in the closure\n"
    n n (count adj) (count closure)
