(* The full pipeline on program text: parse a nested loop, extract its
   uniform dependence structure (Definition 2.1's program class), pick
   the best space mapping for a linear array (Problem 6.1), find the
   time-optimal conflict-free schedule (Problem 2.2), and run it.

   Run with: dune exec examples/from_source.exe                        *)

let source = "for i = 0..7, k = 0..3 { Y[i] = Y[i] + W[k] * X[i-k] }"

let () =
  Printf.printf "source: %s\n\n" source;
  let analysis = Loopnest.parse source in
  Format.printf "%a@." Loopnest.pp_analysis analysis;
  let alg = analysis.Loopnest.algorithm in

  (* A reference schedule direction so Problem 6.1 has its Pi input:
     take the optimum for the natural projection first. *)
  let s0 = Intmat.of_ints [ [ 1; 0 ] ] in
  let r0 =
    match Procedure51.optimize alg ~s:s0 with
    | Some r -> r
    | None -> failwith "no schedule for the initial projection"
  in
  Printf.printf "initial S = [1,0]: Pi = %s, t = %d\n"
    (Intvec.to_string r0.Procedure51.pi) r0.Procedure51.total_time;

  (* Problem 6.1: cheapest linear array for that schedule. *)
  (match Space_opt.optimize alg ~pi:r0.Procedure51.pi ~k:2 with
  | Some so ->
    Printf.printf "space-optimal S = %s: %d PEs, wire length %d\n"
      (Intmat.to_string so.Space_opt.s) so.Space_opt.processors so.Space_opt.wire_length;
    (* Re-optimize the schedule for the chosen S (Problem 2.2). *)
    (match Procedure51.optimize alg ~s:so.Space_opt.s with
    | Some r ->
      Printf.printf "re-optimized Pi = %s, t = %d\n"
        (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time;
      (* Execute with real FIR arithmetic and check the filter output. *)
      let mu_i = Index_set.bound alg.Algorithm.index_set 0 in
      let mu_k = Index_set.bound alg.Algorithm.index_set 1 in
      let w = [| 1; -2; 3; 1 |] in
      let x = Array.init (mu_i + 1) (fun i -> ((i * 7) mod 11) - 5 ) in
      let sem = Fir.semantics ~w ~x in
      let report = Exec.run alg sem (Tmap.make ~s:so.Space_opt.s ~pi:r.Procedure51.pi) in
      Printf.printf
        "simulated: %d PEs, %d cycles, conflicts %d, collisions %d, verification %s\n"
        report.Exec.num_processors report.Exec.makespan
        (List.length report.Exec.conflicts) (List.length report.Exec.collisions)
        (Exec.verification_name report.Exec.verified);
      let value = Algorithm.evaluate_all alg sem in
      let y = Fir.output_of_values ~mu_i ~mu_k value in
      assert (y = Fir.reference_fir ~w ~x ~out_size:(mu_i + 1));
      Printf.printf "filter output: [%s]  (verified against direct convolution)\n"
        (String.concat "; " (Array.to_list (Array.map string_of_int y)))
    | None -> print_endline "no schedule for the optimized S")
  | None -> print_endline "no linear array found")
