(* Experiment harness: regenerates every table and figure of the
   paper's evaluation plus the extension experiments (E1-E16 of
   DESIGN.md), then runs the Bechamel performance benches.

   Usage:
     main.exe                 run everything (experiments + perf)
     main.exe e1 .. e16       run selected experiments
     main.exe perf [--quick] [--out FILE]
                              run the performance benches and write a
                              machine-readable BENCH_<rev>.json
                              (--quick skips the Bechamel micro benches)
     main.exe diff OLD NEW [--threshold PCT]
                              compare two bench JSON files; exit 1 when
                              any timing regressed beyond the threshold
     main.exe quick           run experiments only (no perf)

   The JSON contract for the bench report and for diff is documented
   in docs/SCHEMA.md. *)

let iv = Intvec.of_ints
let im = Intmat.of_ints

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: feasible vs non-feasible conflict vectors on the
   2-D index set [0,4]^2. *)

let e1 () =
  section "E1 / Figure 1: conflict vectors on J = [0,4]^2";
  let mu = [| 4; 4 |] in
  let show name t gamma =
    let free = Conflict.is_conflict_free ~mu t in
    let hits = Conflict.all_in_box ~mu t in
    Printf.printf "gamma%s = %s: %s (%d colliding offsets in the box)\n" name gamma
      (if free then "feasible -> conflict-free mapping" else "NON-feasible -> conflicts")
      (List.length hits);
    List.iter (fun g -> Printf.printf "    offset %s\n" (Intvec.to_string g)) hits
  in
  (* A 1x2 mapping whose kernel is spanned by the displayed vector. *)
  show "1" (im [ [ 1; -1 ] ]) "(1,1)";
  show "2" (im [ [ 5; -3 ] ]) "(3,5)";
  print_endline "Paper: gamma1 collides on the diagonal; gamma2 meets no lattice point."

(* ------------------------------------------------------------------ *)
(* E2 — Example 2.1: conflict vectors of T in Equation 2.8. *)

let e2 () =
  section "E2 / Example 2.1: the mapping T of Equation 2.8 (mu = 6)";
  let t = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ] in
  let mu = [| 6; 6; 6; 6 |] in
  let tbl = Table.create [ "vector"; "kernel?"; "feasible (Thm 2.2)?"; "paper" ] in
  List.iter
    (fun (name, v, paper) ->
      let g = iv v in
      Table.add_row tbl
        [
          name;
          string_of_bool (Intvec.is_zero (Intmat.mul_vec t g));
          string_of_bool (Conflict.is_feasible ~mu g);
          paper;
        ])
    [
      ("gamma1 = (0,1,-7,0)", [ 0; 1; -7; 0 ], "feasible");
      ("gamma2 = (7,-1,0,0)", [ 7; -1; 0; 0 ], "feasible");
      ("gamma3 = (1,0,-1,0)", [ 1; 0; -1; 0 ], "NOT feasible");
    ];
  Table.print tbl;
  Printf.printf "Overall: conflict-free = %b (paper: false)\n"
    (Conflict.is_conflict_free ~mu t)

(* ------------------------------------------------------------------ *)
(* E3 — Example 4.2: Hermite normal form of Equation 2.8. *)

let e3 () =
  section "E3 / Example 4.2: Hermite normal form of T (Equation 2.8)";
  let t = im [ [ 1; 7; 1; 1 ]; [ 1; 7; 1; 0 ] ] in
  let res = Hnf.compute t in
  Printf.printf "T U = H with U unimodular (verified: %b)\n" (Hnf.verify t res);
  Printf.printf "H =\n%s\nU =\n%s\nV = U^-1 =\n%s\n"
    (Intmat.to_string res.Hnf.h) (Intmat.to_string res.Hnf.u) (Intmat.to_string res.Hnf.v);
  print_endline "Conflict-vector generators (last two columns of U):";
  List.iter
    (fun g -> Printf.printf "  %s\n" (Intvec.to_string g))
    (Hnf.kernel_basis t);
  print_endline
    "Paper's generators u3 = (-1,0,1,0), u4 = (-7,1,0,0) span the same lattice."

(* ------------------------------------------------------------------ *)
(* E4/E5 — Equations 3.5 and 3.7: closed-form conflict vectors. *)

let closed_form_table name s pis =
  section name;
  let c = Conflict.f_coefficient_matrix ~s in
  Printf.printf "Coefficient matrix C with gamma(Pi) = lambda * C Pi^T (Prop 3.2):\n%s\n"
    (Intmat.to_string c);
  let tbl = Table.create [ "Pi"; "gamma (canonical)" ] in
  List.iter
    (fun pi ->
      let t = Intmat.append_row s (iv pi) in
      let g =
        match Conflict.single_conflict_vector t with
        | Some g -> Intvec.to_string g
        | None -> "rank deficient"
      in
      Table.add_row tbl
        [ "(" ^ String.concat "," (List.map string_of_int pi) ^ ")"; g ])
    pis;
  Table.print tbl

let e4 () =
  closed_form_table
    "E4 / Example 3.1: matmul, S = [1,1,-1]; gamma ~ (-p2-p3, p1+p3, p1-p2)"
    Matmul.paper_s [ [ 1; 4; 1 ]; [ 2; 1; 3 ]; [ 1; 2; 3 ] ]

let e5 () =
  closed_form_table
    "E5 / Example 3.2: transitive closure, S = [0,0,1]; gamma ~ (p2, -p1, 0)"
    Transitive_closure.paper_s [ [ 5; 1; 1 ]; [ 9; 1; 1 ]; [ 7; 2; 1 ] ]

(* ------------------------------------------------------------------ *)
(* E6 — Example 5.1: time-optimal schedule for matrix multiplication. *)

let e6 () =
  section "E6 / Example 5.1: optimal schedules for matmul (S = [1,1,-1])";
  let tbl =
    Table.create
      [ "mu"; "paper t = mu(mu+2)+1"; "Procedure 5.1"; "ILP (5.1)-(5.2)"; "[23] t' = mu(mu+3)+1" ]
  in
  List.iter
    (fun mu ->
      let alg = Matmul.algorithm ~mu in
      let p51 =
        match Procedure51.optimize alg ~s:Matmul.paper_s with
        | Some r -> r.Procedure51.total_time
        | None -> -1
      in
      let ilp =
        match Ilp_form.optimize alg ~s:Matmul.paper_s with
        | Some sol -> sol.Ilp_form.objective + 1
        | None -> -1
      in
      Table.add_int_row tbl (string_of_int mu)
        [ Matmul.optimal_total_time ~mu; p51; ilp; Matmul.lee_kedem_total_time ~mu ])
    [ 2; 3; 4; 5; 6; 7; 8; 12; 16; 20 ];
  Table.print tbl;
  let sol = Option.get (Ilp_form.optimize (Matmul.algorithm ~mu:4) ~s:Matmul.paper_s) in
  Printf.printf
    "At mu = 4 the ILP picks Pi = %s from branch '%s' (paper: Pi2 = (1,4,1) or Pi3 = (4,1,1));\n\
     all enumerated LP vertices were integral: %b (appendix claim).\n"
    (Intvec.to_string sol.Ilp_form.pi) sol.Ilp_form.branch sol.Ilp_form.integral_vertices

(* ------------------------------------------------------------------ *)
(* E7 — Figure 2: the linear array for matmul. *)

let e7 () =
  section "E7 / Figure 2: linear array for matmul, T = [[1,1,-1],[1,4,1]]";
  let mu = 4 in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  let procs = Tmap.processors tm alg.Algorithm.index_set in
  Printf.printf "%d processors: PE %d .. PE %d (paper: 13 PEs)\n" (List.length procs)
    (List.hd procs).(0)
    (List.nth procs (List.length procs - 1)).(0);
  match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
  | None -> print_endline "no routing found (unexpected)"
  | Some r ->
    let tbl = Table.create [ "stream"; "direction (S d)"; "hops"; "buffers"; "paper" ] in
    let names = [| "B (d1)"; "A (d2)"; "C (d3)" |] in
    let paper =
      [| "left-to-right, 0 buffers"; "left-to-right, 3 buffers"; "right-to-left, 0 buffers" |]
    in
    let sd = Intmat.mul Matmul.paper_s alg.Algorithm.dependences in
    Array.iteri
      (fun i name ->
        Table.add_row tbl
          [
            name;
            Zint.to_string (Intmat.get sd 0 i);
            string_of_int r.Tmap.hops.(i);
            string_of_int r.Tmap.buffers.(i);
            paper.(i);
          ])
      names;
    Table.print tbl;
    Printf.printf "K = I (single primitive per stream) => no data link collisions.\n"

(* ------------------------------------------------------------------ *)
(* E8 — Figure 3: the execution table. *)

let e8 () =
  section "E8 / Figure 3: execution of matmul (mu = 4) on the linear array";
  let mu = 4 in
  let rng = Random.State.make [| 1990 |] in
  let a = Matmul.random_matrix ~rng (mu + 1) and b = Matmul.random_matrix ~rng (mu + 1) in
  let alg = Matmul.algorithm ~mu in
  let tm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu) in
  print_string (Trace.linear_array_table alg tm);
  let r = Exec.run alg (Matmul.semantics ~a ~b) tm in
  Printf.printf
    "\nmakespan = %d (paper: %d)   PEs = %d   conflicts = %d   link collisions = %d\n\
     buffers per stream = (%s) (paper: 3 on the A stream)   verification = %s\n"
    r.Exec.makespan (Matmul.optimal_total_time ~mu) r.Exec.num_processors
    (List.length r.Exec.conflicts) (List.length r.Exec.collisions)
    (String.concat "," (Array.to_list (Array.map string_of_int r.Exec.max_buffer_occupancy)))
    (Exec.verification_name r.Exec.verified)

(* ------------------------------------------------------------------ *)
(* E9 — Example 5.2: transitive closure. *)

let e9 () =
  section "E9 / Example 5.2: optimal schedules for transitive closure (S = [0,0,1])";
  let tbl =
    Table.create
      [ "mu"; "paper t = mu(mu+3)+1"; "Procedure 5.1"; "ILP (5.4)"; "[22] t' = mu(2mu+3)+1"; "speedup" ]
  in
  List.iter
    (fun mu ->
      let alg = Transitive_closure.algorithm ~mu in
      let p51 =
        match Procedure51.optimize alg ~s:Transitive_closure.paper_s with
        | Some r -> r.Procedure51.total_time
        | None -> -1
      in
      let ilp =
        match Ilp_form.optimize alg ~s:Transitive_closure.paper_s with
        | Some sol -> sol.Ilp_form.objective + 1
        | None -> -1
      in
      let t_prior = Transitive_closure.prior_total_time ~mu in
      Table.add_row tbl
        [
          string_of_int mu;
          string_of_int (Transitive_closure.optimal_total_time ~mu);
          string_of_int p51;
          string_of_int ilp;
          string_of_int t_prior;
          Printf.sprintf "%.2fx" (float_of_int t_prior /. float_of_int p51);
        ])
    [ 2; 3; 4; 5; 6; 7; 8; 12; 16 ];
  Table.print tbl;
  (* Simulation of the optimal mapping at mu = 4. *)
  let mu = 4 in
  let alg = Transitive_closure.algorithm ~mu in
  let tm = Tmap.make ~s:Transitive_closure.paper_s ~pi:(Transitive_closure.optimal_pi ~mu) in
  let r = Exec.run alg Dataflow.semantics tm in
  Printf.printf
    "Simulated at mu = 4: makespan = %d, PEs = %d, conflicts = %d, collisions = %d, verification = %s\n"
    r.Exec.makespan r.Exec.num_processors (List.length r.Exec.conflicts)
    (List.length r.Exec.collisions)
    (Exec.verification_name r.Exec.verified)

(* ------------------------------------------------------------------ *)
(* E10 — 5-D bit-level matmul to a 2-D array (formulation (5.5)-(5.6) /
   Proposition 8.1). *)

let e10 () =
  section "E10: 5-D bit-level matmul -> 2-D array (Prop 8.1 + Theorem 4.7)";
  let alg = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
  let s = Bit_matmul.example_s in
  match Procedure51.optimize ~max_objective:40 alg ~s with
  | None -> print_endline "no schedule found"
  | Some r ->
    let pi = r.Procedure51.pi in
    let t = Intmat.append_row s pi in
    Printf.printf "S =\n%s\noptimal Pi = %s, total time = %d (tried %d candidates)\n"
      (Intmat.to_string s) (Intvec.to_string pi) r.Procedure51.total_time
      r.Procedure51.candidates_tried;
    (match Prop81.compute ~s ~pi with
    | Some p ->
      Printf.printf "Prop 8.1: h33 = %s, h34 = %s, h35 = %s\n  u4 = %s\n  u5 = %s\n"
        (Zint.to_string p.Prop81.h33) (Zint.to_string p.Prop81.h34) (Zint.to_string p.Prop81.h35)
        (Intvec.to_string p.Prop81.u4) (Intvec.to_string p.Prop81.u5);
      let canon b = (Hnf.compute (Intmat.of_cols b)).Hnf.h in
      Printf.printf "Closed-form generators span the HNF kernel lattice: %b\n"
        (Intmat.equal (canon [ p.Prop81.u4; p.Prop81.u5 ]) (canon (Hnf.kernel_basis t)))
    | None -> print_endline "Prop 8.1 not applicable (unexpected)");
    let r' = Exec.run alg Dataflow.semantics (Tmap.make ~s ~pi) in
    Printf.printf "Simulated: makespan = %d, PEs = %d, conflicts = %d, verification = %s\n"
      r'.Exec.makespan r'.Exec.num_processors (List.length r'.Exec.conflicts)
      (Exec.verification_name r'.Exec.verified);
    (* The executable serpentine variant computes real bit-level
       products through the same 2-D array family. *)
    let mu_word = 2 and mu_bit = 2 in
    let chained = Bit_matmul.chained_algorithm ~mu_word ~mu_bit in
    let rng = Random.State.make [| 8 |] in
    let a = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
    let b = Bit_matmul.random_word_matrix ~rng ~size:(mu_word + 1) ~mu_bit in
    (match Procedure51.optimize ~max_objective:40 chained ~s with
    | Some rc ->
      let repc =
        Exec.run chained (Bit_matmul.semantics ~a ~b) (Tmap.make ~s ~pi:rc.Procedure51.pi)
      in
      Printf.printf
        "Executable bit-level variant: Pi = %s, t = %d, real products correct = %b\n"
        (Intvec.to_string rc.Procedure51.pi) rc.Procedure51.total_time
        (Exec.values_agree repc)
    | None -> print_endline "no schedule for the chained variant")

(* ------------------------------------------------------------------ *)
(* E11 — validation sweep of Theorems 4.3-4.8 against the box oracle. *)

let e11 () =
  section "E11: closed-form conditions vs exact box oracle (random sweep)";
  let rng = Random.State.make [| 77 |] in
  let trials = 3000 in
  let stats = Hashtbl.create 16 in
  let bump key =
    Hashtbl.replace stats key (1 + try Hashtbl.find stats key with Not_found -> 0)
  in
  for _ = 1 to trials do
    let codim = 2 + Random.State.int rng 2 in
    let n = codim + 1 + Random.State.int rng 2 in
    let k = n - codim in
    let t = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
    if Intmat.rank t = k then begin
      let mu = Array.init n (fun _ -> 1 + Random.State.int rng 4) in
      let oracle = Conflict.is_conflict_free ~mu t in
      let inp = Theorems.make_input ~mu t in
      if codim = 2 then begin
        let thm = Theorems.nec_suff_n_minus_2 inp in
        if thm && not oracle then bump "4.7 sufficiency VIOLATED";
        if (not thm) && oracle then bump "4.7 necessity violated";
        if thm = oracle then bump "4.7 agrees"
      end
      else begin
        let printed = Theorems.nec_suff_n_minus_3 inp in
        let corrected = Theorems.corrected_sufficient_n_minus_3 inp in
        if printed && not oracle then bump "4.8 (printed) sufficiency VIOLATED";
        if corrected && not oracle then bump "4.8 (corrected) sufficiency VIOLATED";
        if (not printed) && oracle then bump "4.8 necessity violated";
        if printed = oracle then bump "4.8 agrees"
      end;
      if fst (Theorems.decide ~mu t) <> oracle then bump "decide WRONG"
    end
  done;
  let tbl = Table.create [ "event"; "count"; "trials" ] in
  List.iter
    (fun (k, v) -> Table.add_row tbl [ k; string_of_int v; string_of_int trials ])
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats []));
  Table.print tbl;
  print_endline
    "Reproduction finding: Theorem 4.7 is sufficient but not necessary as printed;\n\
     Theorem 4.8 as printed also misses conflict vectors with a zero beta component\n\
     (pairwise column combinations); the corrected variant restores sufficiency.\n\
     The unified decision procedure (exact fallback) never disagrees with the oracle."

(* ------------------------------------------------------------------ *)
(* E12 — optimizer cross-check and search effort. *)

let e12 () =
  section "E12: Procedure 5.1 vs ILP formulation (cross-check + effort)";
  let tbl =
    Table.create [ "workload"; "mu"; "P5.1 time"; "ILP time"; "agree"; "candidates tried" ]
  in
  let row name mu p51 ilp =
    match (p51, ilp) with
    | Some a, Some b ->
      Table.add_row tbl
        [
          name;
          string_of_int mu;
          string_of_int a.Procedure51.total_time;
          string_of_int (b.Ilp_form.objective + 1);
          string_of_bool (a.Procedure51.total_time = b.Ilp_form.objective + 1);
          string_of_int a.Procedure51.candidates_tried;
        ]
    | _ -> ()
  in
  List.iter
    (fun mu ->
      let alg = Matmul.algorithm ~mu in
      row "matmul" mu
        (Procedure51.optimize alg ~s:Matmul.paper_s)
        (Ilp_form.optimize alg ~s:Matmul.paper_s))
    [ 2; 3; 4; 5; 6 ];
  List.iter
    (fun mu ->
      let alg = Transitive_closure.algorithm ~mu in
      row "transitive closure" mu
        (Procedure51.optimize alg ~s:Transitive_closure.paper_s)
        (Ilp_form.optimize alg ~s:Transitive_closure.paper_s))
    [ 2; 3; 4; 5 ];
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* E13 — Problem 6.1 (paper's future work): space-optimal arrays. *)

let e13 () =
  section "E13 / Problem 6.1: space-optimal conflict-free arrays (extension)";
  let tbl =
    Table.create
      [ "workload"; "Pi (given)"; "paper's S"; "paper PEs"; "best S found"; "PEs"; "wire" ]
  in
  let row name alg pi paper_s =
    let paper_procs =
      List.length (Tmap.processors (Tmap.make ~s:paper_s ~pi) alg.Algorithm.index_set)
    in
    match Space_opt.optimize alg ~pi ~k:2 with
    | Some r ->
      Table.add_row tbl
        [
          name;
          Intvec.to_string pi;
          Intmat.to_string paper_s;
          string_of_int paper_procs;
          Intmat.to_string r.Space_opt.s;
          string_of_int r.Space_opt.processors;
          string_of_int r.Space_opt.wire_length;
        ]
    | None -> Table.add_row tbl [ name; Intvec.to_string pi; Intmat.to_string paper_s; string_of_int paper_procs; "none"; "-"; "-" ]
  in
  row "matmul mu=4" (Matmul.algorithm ~mu:4) (Matmul.optimal_pi ~mu:4) Matmul.paper_s;
  row "matmul mu=6" (Matmul.algorithm ~mu:6) (Matmul.optimal_pi ~mu:6) Matmul.paper_s;
  row "transitive closure mu=4" (Transitive_closure.algorithm ~mu:4)
    (Transitive_closure.optimal_pi ~mu:4) Transitive_closure.paper_s;
  Table.print tbl;
  print_endline
    "For matmul the search finds a 9-PE linear array (S = [0,1,-1]) under the same\n\
     optimal schedule — fewer processors than the paper's 13-PE S = [1,1,-1]."

(* ------------------------------------------------------------------ *)
(* E14 — loop-nest front end: Definition 2.1's program class, end to
   end. *)

let e14 () =
  section "E14: nested-loop source -> (J, D) -> optimal array (extension)";
  let programs =
    [
      "for i = 0..4, j = 0..4, k = 0..4 { C[i,j] = C[i,j] + A[i,k] * B[k,j] }";
      "for i = 0..7, k = 0..3 { Y[i] = Y[i] + W[k] * X[i-k] }";
      "for t = 0..9, i = 0..7 { A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] }";
    ]
  in
  List.iter
    (fun src ->
      Printf.printf "\n%s\n" src;
      match Loopnest.parse_result src with
      | Error e -> print_endline ("  " ^ Loopnest.error_to_string e)
      | Ok a ->
        List.iter
          (fun (d, why) -> Printf.printf "  d = %s  (%s)\n" (Intvec.to_string d) why)
          a.Loopnest.dependence_origin;
        let alg = a.Loopnest.algorithm in
        let mu = Index_set.bounds alg.Algorithm.index_set in
        (* Problem 6.2: jointly time-optimal, then array-cheapest. *)
        (match Space_opt.optimize_joint alg ~k:2 with
        | Some (pi, so) ->
          Printf.printf "  linear array (Problem 6.2): S = %s, %d PEs, Pi = %s, t = %d\n"
            (Intmat.to_string so.Space_opt.s) so.Space_opt.processors
            (Intvec.to_string pi)
            (Schedule.total_time ~mu pi)
        | None -> print_endline "  no conflict-free linear array in the unit family"))
    programs

(* ------------------------------------------------------------------ *)
(* E15 — Section 3's motivating workload: 4-D bit-level convolution on
   a 2-D bit-plane array, via the Theorem 3.1 closed form. *)

let e15 () =
  section "E15: 4-D bit-level convolution -> 2-D bit-plane array (Theorem 3.1)";
  let alg = Bit_convolution.algorithm ~mu_sample:3 ~mu_tap:2 ~mu_bit:2 in
  let s = Bit_convolution.bitplane_s in
  match Procedure51.optimize alg ~s with
  | None -> print_endline "no schedule found"
  | Some r ->
    let tm = Tmap.make ~s ~pi:r.Procedure51.pi in
    let t = Tmap.matrix tm in
    Printf.printf "S (bit-plane) =\n%s\noptimal Pi = %s, total time = %d\n"
      (Intmat.to_string s) (Intvec.to_string r.Procedure51.pi) r.Procedure51.total_time;
    (match Conflict.single_conflict_vector t with
    | Some g -> Printf.printf "Theorem 3.1 conflict vector: %s (feasible)\n" (Intvec.to_string g)
    | None -> ());
    let stats = Stats.compute alg tm in
    Format.printf "%a@." Stats.pp stats;
    print_endline "PE load map (firings per bit-plane PE):";
    print_string (Trace.grid_activity alg tm);
    let rep = Exec.run alg Dataflow.semantics tm in
    Printf.printf "simulation clean: %b\n" (Exec.is_clean rep)

(* ------------------------------------------------------------------ *)
(* E16 — Problems 2.1/6.2 combined: the achievable (time, processors)
   trade-off (extension). *)

let e16 () =
  section "E16: time/processor Pareto fronts over unit linear arrays (extension)";
  (* Under Definition 2.2 only computational conflicts matter; the
     stricter [23]-style model also excludes link collisions —
     Linkcheck supplies that filter analytically. *)
  let collision_free alg pi s =
    let tm = Tmap.make ~s ~pi in
    match Tmap.find_routing tm ~d:alg.Algorithm.dependences with
    | Some routing -> Linkcheck.predict alg tm routing = []
    | None -> false
  in
  let show name alg =
    List.iter
      (fun (model, accept) ->
        Printf.printf "\n%s — %s:\n" name model;
        let front = Enumerate.pareto_front ~accept alg ~k:2 in
        let tbl = Table.create [ "total time"; "processors"; "Pi"; "S" ] in
        List.iter
          (fun p ->
            Table.add_row tbl
              [
                string_of_int p.Enumerate.total_time;
                string_of_int p.Enumerate.processors;
                Intvec.to_string p.Enumerate.pi;
                Intmat.to_string p.Enumerate.s;
              ])
          front;
        Table.print tbl)
      [
        ("Definition 2.2 (conflicts only)", fun _ _ -> true);
        ("plus link-collision freedom", collision_free alg);
      ]
  in
  show "matmul mu=4" (Matmul.algorithm ~mu:4);
  show "transitive closure mu=4" (Transitive_closure.algorithm ~mu:4);
  let alg4 = Matmul.algorithm ~mu:4 in
  let all = Enumerate.all_optimal_schedules alg4 ~s:Matmul.paper_s in
  Printf.printf
    "\nAll time-optimal schedules for matmul mu=4 with the paper's S (Problem 2.1):\n";
  let tbl = Table.create [ "Pi"; "buffers per stream"; "total buffers" ] in
  List.iter
    (fun pi ->
      match Tmap.find_routing (Tmap.make ~s:Matmul.paper_s ~pi) ~d:alg4.Algorithm.dependences with
      | Some r ->
        Table.add_row tbl
          [
            Intvec.to_string pi;
            "(" ^ String.concat "," (Array.to_list (Array.map string_of_int r.Tmap.buffers)) ^ ")";
            string_of_int (Array.fold_left ( + ) 0 r.Tmap.buffers);
          ]
      | None -> ())
    all;
  Table.print tbl;
  (match Enumerate.best_by_buffers alg4 ~s:Matmul.paper_s with
  | Some (pi, r) ->
    Printf.printf
      "Buffer-minimal time-optimal schedule (paper's future-work criterion): Pi = %s, %d registers\n"
      (Intvec.to_string pi)
      (Array.fold_left ( + ) 0 r.Tmap.buffers)
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Performance benches (Bechamel).  Returns the fitted ns/run per bench
   so the perf driver can embed them in the JSON report; tracing stays
   off here — millions of micro-bench iterations would saturate the
   span buffer without telling us anything a single run does not. *)

let micro_bench () =
  section "Performance benches (Bechamel, ns/run)";
  let open Bechamel in
  let rng = Random.State.make [| 4242 |] in
  let random_t k n = Intmat.make k n (fun _ _ -> Zint.of_int (Random.State.int rng 15 - 7)) in
  let t35 = random_t 3 5 in
  let t_mm = Intmat.append_row Matmul.paper_s (Matmul.optimal_pi ~mu:4) in
  let mu3 = [| 4; 4; 4 |] in
  let alg_mm = Matmul.algorithm ~mu:4 in
  let mm_a = Matmul.random_matrix ~rng 5 and mm_b = Matmul.random_matrix ~rng 5 in
  let tm_mm = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:4) in
  let alg_tc = Transitive_closure.algorithm ~mu:4 in
  let tm_tc = Tmap.make ~s:Transitive_closure.paper_s ~pi:(Transitive_closure.optimal_pi ~mu:4) in
  let big_a = Zint.pow (Zint.of_int 3) 400 and big_b = Zint.pow (Zint.of_int 7) 150 in
  let t5bit = Intmat.append_row Bit_matmul.example_s (iv [ 1; 7; 13; 3; 4 ]) in
  let mu5 = [| 2; 2; 2; 2; 2 |] in
  let tests =
    [
      Test.make ~name:"zint/divmod-big" (Staged.stage (fun () -> Zint.divmod big_a big_b));
      Test.make ~name:"hnf/min-abs-3x5" (Staged.stage (fun () -> Hnf.compute t35));
      Test.make ~name:"hnf/gcdext-3x5 (ablation-hnf-pivot)"
        (Staged.stage (fun () -> Hnf.compute ~strategy:Hnf.Gcdext t35));
      Test.make ~name:"conflict/box-oracle-matmul (ablation-conflict-check)"
        (Staged.stage (fun () -> Conflict.is_conflict_free ~mu:mu3 t_mm));
      Test.make ~name:"conflict/closed-form-matmul (ablation-conflict-check)"
        (Staged.stage (fun () -> Theorems.decide ~mu:mu3 t_mm));
      Test.make ~name:"conflict/box-oracle-5d"
        (Staged.stage (fun () -> Conflict.is_conflict_free ~mu:mu5 t5bit));
      Test.make ~name:"conflict/decide-5d"
        (Staged.stage (fun () -> Theorems.decide ~mu:mu5 t5bit));
      Test.make ~name:"optimize/procedure51-matmul-mu4 (ablation-optimizer)"
        (Staged.stage (fun () -> Procedure51.optimize alg_mm ~s:Matmul.paper_s));
      Test.make ~name:"optimize/ilp-form-matmul-mu4 (ablation-optimizer)"
        (Staged.stage (fun () -> Ilp_form.optimize alg_mm ~s:Matmul.paper_s));
      Test.make ~name:"optimize/procedure51-tc-mu4"
        (Staged.stage (fun () -> Procedure51.optimize alg_tc ~s:Transitive_closure.paper_s));
      Test.make ~name:"simulate/matmul-mu4-figure3"
        (Staged.stage (fun () -> Exec.run alg_mm (Matmul.semantics ~a:mm_a ~b:mm_b) tm_mm));
      Test.make ~name:"simulate/tc-mu4"
        (Staged.stage (fun () -> Exec.run alg_tc Dataflow.semantics tm_tc));
      Test.make ~name:"prop81/closed-form-u"
        (Staged.stage (fun () -> Prop81.compute ~s:Bit_matmul.example_s ~pi:(iv [ 1; 7; 13; 3; 4 ])));
      (* Large-mu conflict decision: the box oracle's work grows with
         the box volume; the LLL-lattice oracle does not. *)
      (let t_large = Intmat.append_row Matmul.paper_s (iv [ 1; 50; 1 ]) in
       let mu_large = [| 50; 50; 50 |] in
       Test.make ~name:"conflict/box-oracle-mu50 (ablation-lattice)"
         (Staged.stage (fun () -> Conflict.find_conflict ~mu:mu_large t_large)));
      (let t_large = Intmat.append_row Matmul.paper_s (iv [ 1; 50; 1 ]) in
       let mu_large = [| 50; 50; 50 |] in
       Test.make ~name:"conflict/lattice-oracle-mu50 (ablation-lattice)"
         (Staged.stage (fun () -> Conflict.find_conflict_lattice ~mu:mu_large t_large)));
      (let alg = Matmul.algorithm ~mu:4 in
       Test.make ~name:"space-opt/matmul-mu4-linear"
         (Staged.stage (fun () -> Space_opt.optimize alg ~pi:(Matmul.optimal_pi ~mu:4) ~k:2)));
      Test.make ~name:"frontend/parse-matmul"
        (Staged.stage (fun () ->
             Loopnest.parse
               "for i = 0..4, j = 0..4, k = 0..4 { C[i,j] = C[i,j] + A[i,k] * B[k,j] }"));
      (let basis =
         [ iv [ 23; -11; 7; 2 ]; iv [ 5; 19; -3; 8 ]; iv [ -9; 4; 31; -6 ] ]
       in
       Test.make ~name:"lll/reduce-3x4" (Staged.stage (fun () -> Lll.reduce basis)));
      (let alg5 = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
       Test.make ~name:"optimize/5d-prop81-screen (ablation-5d-screen)"
         (Staged.stage (fun () ->
              Ilp_form.optimize_5d_to_2d ~max_objective:40 alg5 ~s:Bit_matmul.example_s)));
      (let alg5 = Bit_matmul.algorithm ~mu_word:2 ~mu_bit:2 in
       Test.make ~name:"optimize/5d-procedure51 (ablation-5d-screen)"
         (Staged.stage (fun () ->
              Procedure51.optimize ~max_objective:40 alg5 ~s:Bit_matmul.example_s)));
      (let alg8 = Matmul.algorithm ~mu:8 in
       let rng8 = Random.State.make [| 88 |] in
       let a8 = Matmul.random_matrix ~rng:rng8 9 and b8 = Matmul.random_matrix ~rng:rng8 9 in
       let tm8 = Tmap.make ~s:Matmul.paper_s ~pi:(Matmul.optimal_pi ~mu:8) in
       Test.make ~name:"simulate/matmul-mu8-729pts"
         (Staged.stage (fun () -> Exec.run alg8 (Matmul.semantics ~a:a8 ~b:b8) tm8)));
    ]
  in
  let grouped = Test.make_grouped ~name:"shang-fortes" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name res ->
      match Analyze.OLS.estimates res with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  let sorted = List.sort compare !rows in
  let tbl = Table.create [ "bench"; "ns/run" ] in
  List.iter
    (fun (name, est) -> Table.add_row tbl [ name; Printf.sprintf "%.0f" est ])
    sorted;
  Table.print tbl;
  sorted

(* ------------------------------------------------------------------ *)
(* Engine benches: cold vs warm cache and 1 vs N domains on the same
   queries.  Timed by hand rather than with Bechamel because repeated
   runs erase the cold/warm distinction the bench is about.  Returns
   the JSON "engine" section of the bench report (docs/SCHEMA.md). *)

let engine_bench () =
  Printf.printf "\n== engine: cached parallel search vs the sequential reference ==\n";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, 1000. *. (Unix.gettimeofday () -. t0))
  in
  let jobs_wide = Engine.Pool.jobs (Engine.Pool.create ()) in
  let pool1 = Engine.Pool.create ~jobs:1 () in
  let pool_wide = Engine.Pool.create () in
  let tbl = Table.create [ "query"; "configuration"; "ms" ] in
  let add query config ms = Table.add_row tbl [ query; config; Printf.sprintf "%.1f" ms ] in

  (* Pareto scan, matmul mu=6: the space-family scan dominates. *)
  let alg = Matmul.algorithm ~mu:6 in
  let seq, t_seq = time (fun () -> Enumerate.pareto_front alg ~k:2) in
  add "pareto matmul mu=6" "sequential (Enumerate)" t_seq;
  Engine.Cache.clear ();
  let cold1, t_cold1 = time (fun () -> Search.pareto_front ~pool:pool1 alg ~k:2) in
  add "pareto matmul mu=6" "engine, 1 domain, cold cache" t_cold1;
  let warm1, t_warm1 = time (fun () -> Search.pareto_front ~pool:pool1 alg ~k:2) in
  add "pareto matmul mu=6" "engine, 1 domain, warm cache" t_warm1;
  Engine.Cache.clear ();
  let coldn, t_coldn = time (fun () -> Search.pareto_front ~pool:pool_wide alg ~k:2) in
  add "pareto matmul mu=6"
    (Printf.sprintf "engine, %d domains, cold cache" jobs_wide)
    t_coldn;
  let warmn, t_warmn = time (fun () -> Search.pareto_front ~pool:pool_wide alg ~k:2) in
  add "pareto matmul mu=6"
    (Printf.sprintf "engine, %d domains, warm cache" jobs_wide)
    t_warmn;
  let key p = (p.Enumerate.total_time, p.Enumerate.processors) in
  assert (List.map key seq = List.map key cold1);
  assert (cold1 = warm1 && cold1 = coldn && coldn = warmn);

  (* Schedule enumeration, transitive closure mu=8. *)
  let tc = Transitive_closure.algorithm ~mu:8 in
  let s = Transitive_closure.paper_s in
  let seq_s, t_seq_s = time (fun () -> Enumerate.all_optimal_schedules tc ~s) in
  add "schedules tc mu=8" "sequential (Enumerate)" t_seq_s;
  Engine.Cache.clear ();
  let cold_s, t_cold_s = time (fun () -> Search.all_optimal_schedules ~pool:pool_wide tc ~s) in
  add "schedules tc mu=8"
    (Printf.sprintf "engine, %d domains, cold cache" jobs_wide)
    t_cold_s;
  let warm_s, t_warm_s = time (fun () -> Search.all_optimal_schedules ~pool:pool_wide tc ~s) in
  add "schedules tc mu=8"
    (Printf.sprintf "engine, %d domains, warm cache" jobs_wide)
    t_warm_s;
  assert (List.map Intvec.to_ints seq_s = List.map Intvec.to_ints cold_s);
  assert (cold_s = warm_s);

  Table.print tbl;
  let stats = Engine.Cache.stats () in
  Printf.printf
    "cache: %d hits / %d misses (%d entries); warm/cold speedup: pareto %.1fx, schedules %.1fx\n"
    stats.Engine.Cache.hits stats.Engine.Cache.misses stats.Engine.Cache.entries
    (t_coldn /. Float.max 1e-3 t_warmn)
    (t_cold_s /. Float.max 1e-3 t_warm_s);
  let queries = stats.Engine.Cache.hits + stats.Engine.Cache.misses in
  Json.Obj
    [
      ("jobs", Json.Int jobs_wide);
      ( "pareto",
        Json.Obj
          [
            ("sequential_ms", Json.Float t_seq);
            ("cold_1_ms", Json.Float t_cold1);
            ("warm_1_ms", Json.Float t_warm1);
            ("cold_n_ms", Json.Float t_coldn);
            ("warm_n_ms", Json.Float t_warmn);
          ] );
      ( "schedules",
        Json.Obj
          [
            ("sequential_ms", Json.Float t_seq_s);
            ("cold_n_ms", Json.Float t_cold_s);
            ("warm_n_ms", Json.Float t_warm_s);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int stats.Engine.Cache.hits);
            ("misses", Json.Int stats.Engine.Cache.misses);
            ("entries", Json.Int stats.Engine.Cache.entries);
            ( "hit_rate",
              if queries = 0 then Json.Null
              else
                Json.Float (float_of_int stats.Engine.Cache.hits /. float_of_int queries)
            );
          ] );
      ("warm_beats_sequential", Json.Bool (t_warmn < t_seq));
    ]

(* Serve benches: an in-process daemon on a Unix socket driven by the
   verified load generator — cold store, warm store (same process) and
   a post-restart pass over the reloaded journal.  The headline passes
   run the negotiated transport (binary by default) with pipelined
   connections; a fourth pass repeats the warm workload on v1 JSON
   lines so the report carries the cross-transport comparison.
   Returns the JSON "serve" section of the bench report
   (docs/SCHEMA.md). *)

let serve_bench ?(quick = false) ?(transport = Server.Wire.V2) () =
  Printf.printf "\n== serve: event-loop daemon, persistent store, verified load ==\n";
  let requests = if quick then 2000 else 20000 in
  let concurrency = 16 and distinct = 128 and jobs = 4 and pipeline = 32 in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-bench-%d%s" (Unix.getpid ()) name)
  in
  let sock = tmp ".sock" and store_path = tmp ".store" in
  if Sys.file_exists store_path then Sys.remove store_path;
  let boot () =
    let cfg =
      {
        (Server.Daemon.default_config (Server.Daemon.Unix_sock sock)) with
        jobs = Some jobs;
        store_path = Some store_path;
      }
    in
    let d = Server.Daemon.create cfg in
    (d, Thread.create Server.Daemon.run d)
  in
  let shutdown (d, th) =
    Server.Daemon.initiate_drain d;
    Thread.join th
  in
  let hits_of d =
    match Server.Daemon.store d with
    | Some s -> (Server.Store.stats s).Server.Store.hits
    | None -> 0
  in
  let run_pass ?(transport = transport) ?(pipeline = pipeline) label server =
    let d, _ = server in
    let hits0 = hits_of d in
    let r =
      Server.Client.load (`Unix sock)
        { Server.Client.default_load with requests; concurrency; distinct; transport;
          pipeline }
    in
    let hit_rate = float_of_int (hits_of d - hits0) /. float_of_int requests in
    Printf.printf
      "%-12s %5d req (%s/%d)  p50 %6.2f ms  p95 %6.2f ms  %7.0f req/s  shed %d  \
       hit rate %.2f  disagreements %d\n"
      label requests r.Server.Client.transport pipeline r.Server.Client.p50_ms
      r.Server.Client.p95_ms r.Server.Client.rps r.Server.Client.shed hit_rate
      r.Server.Client.disagreements;
    assert (r.Server.Client.disagreements = 0);
    assert (r.Server.Client.errors = 0);
    ( r,
      Json.Obj
        [
          ("transport", Json.Str r.Server.Client.transport);
          ("pipeline", Json.Int pipeline);
          ("p50_ms", Json.Float r.Server.Client.p50_ms);
          ("p95_ms", Json.Float r.Server.Client.p95_ms);
          ("p99_ms", Json.Float r.Server.Client.p99_ms);
          ("requests_per_s", Json.Float r.Server.Client.rps);
          ( "shed_rate",
            Json.Float (float_of_int r.Server.Client.shed /. float_of_int requests) );
          ("hit_rate", Json.Float hit_rate);
        ] )
  in
  let server = boot () in
  let _, cold = run_pass "cold store" server in
  let _, warm = run_pass "warm store" server in
  (* Same warm workload, v1 JSON lines, unpipelined: the report keeps
     the apples-to-apples transport comparison next to the headline. *)
  let _, warm_json = run_pass ~transport:Server.Wire.V1 ~pipeline:1 "warm json" server in
  shutdown server;
  (* The journal must survive the restart: the first pass of the new
     process is already warm. *)
  let server = boot () in
  let d, _ = server in
  let loaded = match Server.Daemon.store d with
    | Some s -> (Server.Store.stats s).Server.Store.loaded
    | None -> 0
  in
  let _, restart = run_pass "post-restart" server in
  shutdown server;
  if Sys.file_exists store_path then Sys.remove store_path;
  Json.Obj
    [
      ("requests", Json.Int requests);
      ("concurrency", Json.Int concurrency);
      ("distinct", Json.Int distinct);
      ("jobs", Json.Int jobs);
      ("transport", Json.Str (Server.Wire.version_name transport));
      ("pipeline", Json.Int pipeline);
      ("cold", cold);
      ("warm", warm);
      ("warm_json", warm_json);
      ("restart", restart);
      ("store_loaded_at_restart", Json.Int loaded);
    ]

(* Chaos bench: the daemon under a seeded fault plan, driven by the
   retrying client.  The interesting numbers are the recovery-latency
   percentiles (requests that needed more than one attempt) next to
   the overall ones; the section also asserts the convergence
   contract — chaos must never trade correctness for latency.
   Returns the JSON "chaos" section of the bench report
   (docs/SCHEMA.md). *)

let chaos_bench ?(quick = false) () =
  Printf.printf "\n== chaos: daemon under seeded fault plan, retrying client ==\n";
  let requests = if quick then 200 else 1000 in
  let r =
    Server.Chaos.run
      { Server.Chaos.default_config with requests; rate = 0.08; seed = 42 }
  in
  Printf.printf
    "%5d req  %d faults  %d worker deaths  %d retried\n\
     overall  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms\n\
     recovery p50 %6.2f ms  p95 %6.2f ms  max %6.2f ms\n\
     %s (fingerprint %s)\n"
    requests r.Server.Chaos.faults r.Server.Chaos.worker_deaths
    r.Server.Chaos.retried r.Server.Chaos.p50_ms r.Server.Chaos.p95_ms
    r.Server.Chaos.p99_ms r.Server.Chaos.recovery_p50_ms
    r.Server.Chaos.recovery_p95_ms r.Server.Chaos.recovery_max_ms
    (if r.Server.Chaos.converged then "converged" else "DIVERGED")
    r.Server.Chaos.fingerprint;
  assert r.Server.Chaos.converged;
  Server.Chaos.json_of_report r

(* Exec bench: the compiled multicore kernel over the scenario x dtype
   matrix.  Verification stays on (it is part of the contract — the
   section asserts it), the simulator cross-check stays off (covered
   by tests and the exec CLI).  Per-cell timing is the best of a few
   kernel runs so the section's elapsed_ms leaves gate kernel
   regressions via `diff --section exec` (docs/SCHEMA.md). *)

let exec_bench ?(quick = false) () =
  Printf.printf "\n== exec: compiled kernel, scenario x dtype matrix ==\n";
  let specs =
    if quick then [ Scenario.scenario "matmul" ~mu:8; Scenario.scenario "tc" ~mu:8 ]
    else Scenario.default_scenarios
  in
  let reps = if quick then 2 else 3 in
  let pool = Engine.Pool.create () in
  let cells =
    List.concat_map
      (fun spec ->
        List.map
          (fun dtype ->
            let runs =
              List.init reps (fun _ ->
                  Scenario.run_cell ~pool ~sim_limit:0 spec dtype)
            in
            let best =
              List.fold_left
                (fun acc (c : Scenario.cell) ->
                  if c.Scenario.elapsed_s < acc.Scenario.elapsed_s then c else acc)
                (List.hd runs) (List.tl runs)
            in
            assert best.Scenario.verified;
            best)
          Scenario.types)
      specs
  in
  List.iter
    (fun (c : Scenario.cell) ->
      Printf.printf "%-14s %-6s %8d cells  %9.4f ms  %8.4f GFLOP/s  %s\n"
        c.Scenario.spec.Scenario.name c.Scenario.dtype c.Scenario.cells
        (c.Scenario.elapsed_s *. 1000.)
        c.Scenario.gflops
        (if c.Scenario.verified then "ok" else "MISMATCH"))
    cells;
  Json.Arr
    (List.map
       (fun (c : Scenario.cell) ->
         Json.Obj
           [
             ( "name",
               Json.Str (c.Scenario.spec.Scenario.name ^ "." ^ c.Scenario.dtype) );
             ("cells", Json.Int c.Scenario.cells);
             ("elapsed_ms", Json.Float (c.Scenario.elapsed_s *. 1000.));
             ("gflops", Json.Float c.Scenario.gflops);
             ("verified", Json.Bool c.Scenario.verified);
           ])
       cells)

(* Cluster benches: the serving tier of docs/CLUSTER.md.  Two halves:

   - snapshot warm start: a journal of N verdict records opened by
     full replay vs the same records compacted into a hash-indexed
     snapshot and opened in O(1) reads.  The section asserts the
     ISSUE-9 acceptance gate (snapshot open >= 10x faster than
     replay open at the full record count).
   - shard scaling: the same verified load driven through an
     in-process router over 1, 2 and 4 daemon shards; the report
     carries req/s and p99 per width and `diff --section cluster`
     gates both.  Correctness stays asserted (zero disagreements,
     zero errors) — scaling never trades bytes for speed. *)

let cluster_bench ?(quick = false) () =
  Printf.printf "\n== cluster: snapshot warm start + router shard scaling ==\n";
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sf-bench-cluster-%d%s" (Unix.getpid ()) name)
  in
  (* -- snapshot open vs replay open ------------------------------- *)
  let records = if quick then 20_000 else 100_000 in
  let journal = tmp ".store" and snap = tmp ".snap" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ journal; snap ];
  let t = Intmat.of_ints [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ] in
  let entry =
    { Server.Store.conflict_free = true; full_rank = true;
      decided_by = "bench"; witness = None }
  in
  let s = Server.Store.open_ ~fsync_every:10_000 journal in
  for i = 1 to records do
    (* Distinct mu per record: every key is unique, as in a real
       journal grown by a fresh-instance workload. *)
    Server.Store.add s ~mu:[| i; (i mod 97) + 1; (i mod 89) + 1 |] t entry
  done;
  Server.Store.close s;
  let replay = Server.Store.open_ ~fsync_every:10_000 journal in
  let replay_stats = Server.Store.stats replay in
  assert (replay_stats.Server.Store.loaded = records);
  let replay_ms = replay_stats.Server.Store.open_ms in
  ignore (Server.Store.compact_to_snapshot replay ~snapshot:snap);
  Server.Store.close replay;
  let warm = Server.Store.open_ ~snapshot:snap journal in
  let warm_stats = Server.Store.stats warm in
  assert (warm_stats.Server.Store.provenance = "snapshot+tail");
  assert (warm_stats.Server.Store.snap_entries = records);
  let snapshot_ms = warm_stats.Server.Store.open_ms in
  (* The warm store still serves: spot-check a key through the index. *)
  assert (Server.Store.find warm ~mu:[| 1; 2; 2 |] t = Some entry);
  Server.Store.close warm;
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ journal; snap ];
  let speedup = replay_ms /. Float.max 0.01 snapshot_ms in
  Printf.printf
    "snapshot warm start: %d records  replay open %.1f ms  snapshot open %.2f ms  \
     (%.0fx)\n"
    records replay_ms snapshot_ms speedup;
  if speedup < 10. then begin
    Printf.eprintf "FAIL: snapshot open speedup %.1fx < 10x\n" speedup;
    exit 1
  end;
  (* -- router shard scaling --------------------------------------- *)
  let requests = if quick then 1_000 else 4_000 in
  let concurrency = 8 and distinct = 64 in
  let width_pass shards =
    let shard_paths =
      List.init shards (fun i ->
          (tmp (Printf.sprintf "-s%d.sock" i), tmp (Printf.sprintf "-s%d.store" i)))
    in
    let daemons =
      List.map
        (fun (sock, store_path) ->
          if Sys.file_exists store_path then Sys.remove store_path;
          let cfg =
            {
              (Server.Daemon.default_config (Server.Daemon.Unix_sock sock)) with
              jobs = Some 2;
              store_path = Some store_path;
            }
          in
          let d = Server.Daemon.create cfg in
          (d, Thread.create Server.Daemon.run d))
        shard_paths
    in
    let rsock = tmp (Printf.sprintf "-r%d.sock" shards) in
    let specs =
      List.map
        (fun (sock, store_path) ->
          { Cluster.Router.primary = `Unix sock; follower = None;
            journal = Some store_path })
        shard_paths
    in
    let router =
      Cluster.Router.create
        {
          (Cluster.Router.default_config (Server.Daemon.Unix_sock rsock) specs) with
          pool_size = 2;
          health_interval_ms = 60_000;
        }
    in
    let rth = Thread.create Cluster.Router.run router in
    let r =
      Server.Client.load (`Unix rsock)
        { Server.Client.default_load with requests; concurrency; distinct;
          transport = Server.Wire.V2; pipeline = 8 }
    in
    Cluster.Router.initiate_drain router;
    Thread.join rth;
    List.iter
      (fun (d, th) ->
        Server.Daemon.initiate_drain d;
        Thread.join th)
      daemons;
    List.iter
      (fun (sock, store_path) ->
        List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ sock; store_path ])
      shard_paths;
    assert (r.Server.Client.disagreements = 0);
    assert (r.Server.Client.errors = 0);
    Printf.printf
      "%d shard%s  %5d req  p50 %6.2f ms  p99 %6.2f ms  %7.0f req/s  shed %d\n"
      shards (if shards = 1 then " " else "s") requests r.Server.Client.p50_ms
      r.Server.Client.p99_ms r.Server.Client.rps r.Server.Client.shed;
    Json.Obj
      [
        ("shards", Json.Int shards);
        ("p50_ms", Json.Float r.Server.Client.p50_ms);
        ("p99_ms", Json.Float r.Server.Client.p99_ms);
        ("requests_per_s", Json.Float r.Server.Client.rps);
        ( "shed_rate",
          Json.Float (float_of_int r.Server.Client.shed /. float_of_int requests) );
      ]
  in
  let widths = List.map width_pass [ 1; 2; 4 ] in
  Json.Obj
    [
      ( "snapshot",
        Json.Obj
          [
            ("records", Json.Int records);
            ("replay_open_ms", Json.Float replay_ms);
            ("snapshot_open_ms", Json.Float snapshot_ms);
            ("speedup", Json.Float speedup);
          ] );
      ("requests", Json.Int requests);
      ("widths", Json.Arr widths);
    ]

(* SLO benches: the gray-failure acceptance gate of docs/RESILIENCE.md,
   measured.  A three-pass {!Cluster.Chaos_cluster} SLO audit over a
   two-shard fleet — fault-free baseline, ambient latency faults with
   hedging, the same faults without — whose report carries the p99 of
   each pass and the audited bound (3x the baseline p99 with a 25 ms
   floor).  The section asserts the ISSUE-10 acceptance gate (hedged
   p99 under the bound while the unhedged pass demonstrably degrades,
   zero disagreements, zero lost acked writes) and `diff --section
   slo` gates the latencies (docs/SCHEMA.md). *)

let slo_bench ?(quick = false) () =
  Printf.printf "\n== slo: hedged vs unhedged p99 under gray latency faults ==\n";
  let requests = if quick then 300 else 600 in
  let cfg =
    {
      Cluster.Chaos_cluster.default_config with
      seed = 11;
      requests;
      shards = 2;
      classes = [ "latency" ];
      rate = 0.03;
      slo = true;
    }
  in
  let r = Cluster.Chaos_cluster.run cfg in
  let slo =
    match r.Cluster.Chaos_cluster.slo with
    | Some s -> s
    | None -> failwith "slo bench: chaos report without slo section"
  in
  Printf.printf
    "%d req  baseline p99 %6.2f ms   hedged p50 %6.2f ms  p99 %6.2f ms   \
     unhedged p99 %7.2f ms\n"
    requests slo.Cluster.Chaos_cluster.baseline_p99_ms r.Cluster.Chaos_cluster.p50_ms
    slo.Cluster.Chaos_cluster.hedged_p99_ms slo.Cluster.Chaos_cluster.unhedged_p99_ms;
  Printf.printf
    "bound %6.2f ms (3x baseline, 25 ms floor)   hedges %d (%d won)   delays %d\n"
    slo.Cluster.Chaos_cluster.bound_ms r.Cluster.Chaos_cluster.hedges
    r.Cluster.Chaos_cluster.hedge_wins r.Cluster.Chaos_cluster.delays;
  if not r.Cluster.Chaos_cluster.converged then begin
    Printf.eprintf
      "FAIL: slo audit did not converge (hedged within bound: %b, unhedged \
       degraded: %b, disagreements %d, lost %d)\n"
      slo.Cluster.Chaos_cluster.hedged_within_bound
      slo.Cluster.Chaos_cluster.unhedged_degraded
      r.Cluster.Chaos_cluster.disagreements r.Cluster.Chaos_cluster.lost_writes;
    exit 1
  end;
  Json.Obj
    [
      ("requests", Json.Int requests);
      ("baseline_p99_ms", Json.Float slo.Cluster.Chaos_cluster.baseline_p99_ms);
      ("hedged_p50_ms", Json.Float r.Cluster.Chaos_cluster.p50_ms);
      ("hedged_p99_ms", Json.Float slo.Cluster.Chaos_cluster.hedged_p99_ms);
      ("unhedged_p99_ms", Json.Float slo.Cluster.Chaos_cluster.unhedged_p99_ms);
      ("bound_ms", Json.Float slo.Cluster.Chaos_cluster.bound_ms);
      ("hedges", Json.Int r.Cluster.Chaos_cluster.hedges);
      ("hedge_wins", Json.Int r.Cluster.Chaos_cluster.hedge_wins);
      ("delays", Json.Int r.Cluster.Chaos_cluster.delays);
    ]

(* Family benches: a structurally-repetitive mu-sweep — few distinct
   mapping matrices, many index-set sizes each, every (T, mu) pair
   fresh.  The concrete verdict cache keys on (T, mu) and so never
   hits; the family tier compiles each T once and decides the rest
   symbolically.  The section asserts the ISSUE-8 acceptance gates
   (family effective hit rate > 0.9 while the concrete cache alone
   scores < 0.1) and its numbers gate regressions via
   `diff --section family` (docs/SCHEMA.md, docs/FAMILIES.md). *)

let family_bench () =
  Printf.printf "\n== family: symbolic mu-sweep vs concrete verdict cache ==\n";
  Engine.Cache.clear ();
  let mat rows = Intmat.of_ints rows in
  (* All four family shapes that decide instances are represented:
     const-free, adjugate (both outcomes across the sweep), and a
     cascade whose kernel column always fits the box. *)
  let mats =
    [
      ("matmul linear (adjugate)", mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ] ]);
      ("tc linear (adjugate)", mat [ [ 0; 0; 1 ]; [ 5; 1; 1 ] ]);
      ("3x4 adjugate", mat [ [ 1; 0; 0; 1 ]; [ 0; 1; 0; 1 ]; [ 0; 0; 1; -1 ] ]);
      ("3x4 adjugate'", mat [ [ 1; 1; 0; 0 ]; [ 0; 1; 1; 0 ]; [ 0; 0; 1; 1 ] ]);
      ("3x3 const-free", mat [ [ 1; 1; -1 ]; [ 1; 4; 1 ]; [ 0; 1; 0 ] ]);
      ("2x4 cascade (kernel trapped)", mat [ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ]);
    ]
  in
  let sweep = 100 in
  let before = Obs.Metrics.snapshot () in
  let t0 = Unix.gettimeofday () in
  let queries = ref 0 in
  List.iter
    (fun (_, t) ->
      let n = Intmat.cols t in
      for i = 1 to sweep do
        (* mu.(0) = i keeps every instance of the sweep distinct, so
           the concrete (T, mu) cache cannot help. *)
        let mu = Array.init n (fun j -> if j = 0 then i else 1 + (i * (j + 2) mod 19)) in
        ignore (Analysis.check ~mu t);
        incr queries
      done)
    mats;
  let elapsed_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let after = Obs.Metrics.snapshot () in
  let delta name =
    Obs.Metrics.counter_value after name - Obs.Metrics.counter_value before name
  in
  let fam_hits = delta "family.hits" in
  let fam_misses = delta "family.misses" in
  let fam_residual = delta "family.residual" in
  let verdict_hits = delta "cache.analysis-verdict.hits" in
  let q = !queries in
  let rate x = float_of_int x /. float_of_int (max 1 q) in
  let family_rate = rate fam_hits and concrete_rate = rate verdict_hits in
  Printf.printf
    "%d queries over %d families in %.1f ms\n\
     family tier: %d decided, %d built, %d residual  (effective hit rate %.3f)\n\
     concrete verdict cache alone: %d hits  (hit rate %.3f)\n"
    q (List.length mats) elapsed_ms fam_hits fam_misses fam_residual family_rate
    verdict_hits concrete_rate;
  if family_rate <= 0.9 then begin
    Printf.eprintf "FAIL: family effective hit rate %.3f <= 0.9\n" family_rate;
    exit 1
  end;
  if concrete_rate >= 0.1 then begin
    Printf.eprintf "FAIL: concrete cache hit rate %.3f >= 0.1 (workload not fresh)\n"
      concrete_rate;
    exit 1
  end;
  Json.Obj
    [
      ("queries", Json.Int q);
      ("families", Json.Int fam_misses);
      ("hits", Json.Int fam_hits);
      ("residual", Json.Int fam_residual);
      ("verdict_cache_hits", Json.Int verdict_hits);
      ("family_hit_rate", Json.Float family_rate);
      ("concrete_hit_rate", Json.Float concrete_rate);
      ("elapsed_ms", Json.Float elapsed_ms);
    ]

(* ------------------------------------------------------------------ *)
(* The perf driver: micro benches (unless --quick) + engine benches,
   folded into one schema-versioned JSON report named after the git
   revision so successive runs form a trajectory. *)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let perf ?(quick = false) ?out () =
  let micro = if quick then [] else micro_bench () in
  (* Trace only the engine benches: each phase runs once, so the span
     aggregate is a faithful per-phase time breakdown. *)
  Obs.Metrics.reset ();
  Obs.Trace.enable ();
  let engine = engine_bench () in
  Obs.Trace.disable ();
  let phases = Obs.Export.phases (Obs.Trace.aggregate (Obs.Trace.spans ())) in
  let family = family_bench () in
  let serve = serve_bench ~quick () in
  let chaos = chaos_bench ~quick () in
  let exec_section = exec_bench ~quick () in
  let cluster = cluster_bench ~quick () in
  let slo = slo_bench ~quick () in
  let rev = git_rev () in
  let path =
    match out with Some p -> p | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  let report =
    Json.versioned ~command:"bench"
      [
        ("rev", Json.Str rev);
        ("quick", Json.Bool quick);
        ( "micro",
          Json.Arr
            (List.map
               (fun (name, est) ->
                 Json.Obj [ ("name", Json.Str name); ("ns_per_run", Json.Float est) ])
               micro) );
        ("engine", engine);
        ("family", family);
        ("serve", serve);
        ("chaos", chaos);
        ("exec", exec_section);
        ("cluster", cluster);
        ("slo", slo);
        ("phases", phases);
      ]
  in
  Obs.Export.write_file path report;
  Printf.printf "bench report written to %s\n" path

let bench_diff ?section ~threshold old_file new_file =
  match (Json.parse_file old_file, Json.parse_file new_file) with
  | Ok baseline, Ok current ->
    let report =
      Benchstat.compare_runs ?section ~threshold_pct:threshold ~baseline ~current ()
    in
    (match section with
    | Some s -> Printf.printf "section %s:\n" s
    | None -> ());
    Format.printf "%a@." Benchstat.pp report;
    if report.Benchstat.regressions <> [] then exit 1
  | Error e, _ | _, Error e ->
    Printf.eprintf "bench diff: %s\n" e;
    exit 2

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [e1..e16 | engine | family | serve [--transport json|binary] | \
     chaos | exec | cluster | slo | quick | perf [--quick] [--out FILE] | \
     diff OLD NEW [--threshold PCT] [--section NAME]]\n";
  exit 2

let parse_perf_args rest =
  let rec go quick out = function
    | [] -> perf ~quick ?out ()
    | "--quick" :: tl -> go true out tl
    | "--out" :: path :: tl -> go quick (Some path) tl
    | arg :: tl when String.length arg > 6 && String.sub arg 0 6 = "--out=" ->
      go quick (Some (String.sub arg 6 (String.length arg - 6))) tl
    | _ -> usage ()
  in
  go false None rest

let parse_diff_args rest =
  let rec go threshold section files = function
    | [] -> (
      match List.rev files with
      | [ old_file; new_file ] -> bench_diff ?section ~threshold old_file new_file
      | _ -> usage ())
    | "--threshold" :: pct :: tl -> (
      match float_of_string_opt pct with
      | Some t -> go t section files tl
      | None -> usage ())
    | "--section" :: name :: tl -> go threshold (Some name) files tl
    | arg :: tl -> go threshold section (arg :: files) tl
  in
  go 20. None [] rest

let parse_serve_args rest =
  let rec go transport = function
    | [] -> ignore (serve_bench ~transport ())
    | "--transport" :: name :: tl -> (
      match Server.Wire.version_of_name name with
      | Some v -> go v tl
      | None -> usage ())
    | _ -> usage ()
  in
  go Server.Wire.V2 rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) experiments;
    perf ()
  | [ "quick" ] -> List.iter (fun (_, f) -> f ()) experiments
  | "perf" :: rest -> parse_perf_args rest
  | "diff" :: rest -> parse_diff_args rest
  | "serve" :: rest -> parse_serve_args rest
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) experiments with
        | Some f -> f ()
        | None ->
          if name = "engine" then ignore (engine_bench ())
          else if name = "family" then ignore (family_bench ())
          else if name = "chaos" then ignore (chaos_bench ())
          else if name = "exec" then ignore (exec_bench ())
          else if name = "cluster" then ignore (cluster_bench ())
          else if name = "slo" then ignore (slo_bench ())
          else
            Printf.eprintf
              "unknown experiment %s (e1..e16, engine, family, serve, chaos, exec, \
               cluster, slo, perf, diff, quick)\n"
              name)
      names
